//! A small metrics registry: counters, gauges, fixed-bucket histograms and
//! per-epoch sample series, with a deterministic text snapshot.
//!
//! All storage is `BTreeMap`-backed so iteration order — and therefore the
//! snapshot — is a pure function of the recorded values. Epoch series are
//! keyed on the solver's own iteration counter, never wall time.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A fixed-bucket histogram: `counts[i]` holds observations `<= bounds[i]`,
/// with one extra overflow bucket.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts by
    /// linear interpolation inside the bucket the quantile falls in — the
    /// standard fixed-bucket estimator, so monitor rules and reports can
    /// state latencies as p50/p90/p99 instead of raw bucket counts. The
    /// first bucket interpolates from zero (bounds are durations); a
    /// quantile landing in the overflow bucket reports the last finite
    /// bound (the estimator cannot see past it). `None` for an empty
    /// histogram or an out-of-range `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if (cum as f64) < target {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Overflow bucket: no finite upper edge to interpolate to.
                return self.bounds.last().copied();
            };
            let lower = if i == 0 {
                upper.min(0.0)
            } else {
                self.bounds[i - 1]
            };
            let frac = if c == 0 {
                1.0
            } else {
                ((target - (cum - c) as f64) / c as f64).clamp(0.0, 1.0)
            };
            return Some(lower + (upper - lower) * frac);
        }
        self.bounds.last().copied()
    }

    fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
            self.sum += other.sum;
            self.count += other.count;
        } else {
            // Incompatible layouts: fold the other side's aggregate into the
            // overflow bucket so no observation is silently lost.
            if let Some(last) = self.counts.last_mut() {
                *last += other.count;
            }
            self.sum += other.sum;
            self.count += other.count;
        }
    }
}

/// Default bucket bounds for histograms observed without an explicit layout
/// (simulated seconds, log-ish spacing).
pub const DEFAULT_BOUNDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Counters, gauges, histograms and epoch-keyed sample series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `n` to counter `name` (created at zero on first use).
    pub fn inc(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set gauge `name` to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Record `v` into histogram `name`, creating it with
    /// [`DEFAULT_BOUNDS`] on first use.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(DEFAULT_BOUNDS))
            .observe(v);
    }

    /// Record `v` into histogram `name`, creating it with the given bucket
    /// bounds on first use (existing layouts are kept).
    pub fn observe_with_bounds(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Append an `(epoch, value)` sample to series `name`.
    pub fn sample(&mut self, name: &str, epoch: u64, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((epoch, value));
    }

    /// Counter value, zero if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Sample series by name (epoch-ordered if recorded in epoch order).
    pub fn series(&self, name: &str) -> &[(u64, f64)] {
        self.series.get(name).map_or(&[], Vec::as_slice)
    }

    /// Names of all recorded series.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }

    /// Fold `other` into `self`: counters add, gauges last-write-wins,
    /// same-layout histograms add bucket-wise, series concatenate and
    /// re-sort by `(epoch, value bits)`. Merging rank registries in rank
    /// order therefore yields one deterministic result.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        for (k, pts) in &other.series {
            let mine = self.series.entry(k.clone()).or_default();
            mine.extend_from_slice(pts);
            mine.sort_by_key(|&(epoch, v)| (epoch, v.to_bits()));
        }
    }

    /// Prefix every metric name with `prefix` + `.` — used to namespace a
    /// sub-component's registry before merging it into a run-level one.
    pub fn namespaced(&self, prefix: &str) -> MetricsRegistry {
        let rename = |k: &String| format!("{prefix}.{k}");
        MetricsRegistry {
            counters: self.counters.iter().map(|(k, v)| (rename(k), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (rename(k), *v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (rename(k), v.clone()))
                .collect(),
            series: self
                .series
                .iter()
                .map(|(k, v)| (rename(k), v.clone()))
                .collect(),
        }
    }

    /// Render the whole registry as a deterministic plain-text snapshot:
    /// one line per counter/gauge, a block per histogram and series, all in
    /// lexicographic name order.
    pub fn snapshot(&self) -> String {
        let mut out = String::from("# metrics snapshot\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k} = {}", Num(*v));
        }
        for (k, h) in &self.histograms {
            let q = |q: f64| Num(h.quantile(q).unwrap_or(f64::NAN));
            let _ = writeln!(
                out,
                "histogram {k} count={} sum={} p50={} p90={} p99={}",
                h.count,
                Num(h.sum),
                q(0.50),
                q(0.90),
                q(0.99)
            );
            for (i, c) in h.counts.iter().enumerate() {
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = writeln!(out, "  le {} : {c}", Num(*b));
                    }
                    None => {
                        let _ = writeln!(out, "  le +inf : {c}");
                    }
                }
            }
        }
        for (k, pts) in &self.series {
            let _ = writeln!(out, "series {k} ({} samples)", pts.len());
            for (epoch, v) in pts {
                let _ = writeln!(out, "  epoch {epoch} : {}", Num(*v));
            }
        }
        out
    }
}

/// Formats an `f64` the same way the JSON emitters do (shortest
/// round-trip; non-finite rendered as `null`).
struct Num(f64);

impl std::fmt::Display for Num {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "null")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut m = MetricsRegistry::new();
        m.inc("shrink_passes", 2);
        m.inc("shrink_passes", 1);
        m.set_gauge("cache_hit_rate", 0.25);
        m.set_gauge("cache_hit_rate", 0.75);
        assert_eq!(m.counter("shrink_passes"), 3);
        assert_eq!(m.gauge("cache_hit_rate"), Some(0.75));
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.2).abs() < 1e-9);
    }

    #[test]
    fn merge_is_additive_and_order_independent_for_series() {
        let mut a = MetricsRegistry::new();
        a.inc("c", 1);
        a.sample("active_set", 0, 100.0);
        a.sample("active_set", 2, 50.0);
        let mut b = MetricsRegistry::new();
        b.inc("c", 2);
        b.sample("active_set", 1, 75.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("c"), 3);
        assert_eq!(ab.series("active_set"), ba.series("active_set"));
        assert_eq!(ab.series("active_set"), &[(0, 100.0), (1, 75.0), (2, 50.0)]);
    }

    #[test]
    fn mismatched_histogram_layouts_keep_totals() {
        let mut a = MetricsRegistry::new();
        a.observe_with_bounds("t", &[1.0], 0.5);
        let mut b = MetricsRegistry::new();
        b.observe_with_bounds("t", &[2.0, 4.0], 3.0);
        a.merge(&b);
        let h = a.histogram("t").expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert!((h.sum() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_deterministic_and_name_ordered() {
        let build = |flip: bool| {
            let mut m = MetricsRegistry::new();
            if flip {
                m.set_gauge("b_gauge", 2.0);
                m.inc("a_counter", 7);
            } else {
                m.inc("a_counter", 7);
                m.set_gauge("b_gauge", 2.0);
            }
            m.observe_with_bounds("lat", &[1.0], 0.5);
            m.sample("kkt_gap", 1, 0.125);
            m.snapshot()
        };
        let s = build(false);
        assert_eq!(s, build(true));
        assert!(s.contains("counter a_counter = 7"));
        assert!(s.contains("gauge b_gauge = 2"));
        assert!(s.contains("histogram lat count=1"));
        assert!(s.contains("epoch 1 : 0.125"));
        let ca = s.find("a_counter").expect("counter line");
        let gb = s.find("b_gauge").expect("gauge line");
        assert!(ca < gb);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0] {
            h.observe(v);
        }
        // p50 target = 2 observations -> exactly fills the second bucket.
        assert!((h.quantile(0.5).unwrap() - 1.5).abs() < 1e-9);
        // p100 lands at the top of the last occupied finite bucket.
        assert!((h.quantile(1.0).unwrap() - 4.0).abs() < 1e-9);
        // quartile inside the first bucket interpolates from zero.
        assert!((h.quantile(0.25).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None);
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn overflow_quantiles_report_the_last_finite_bound() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        for v in [10.0, 20.0, 30.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.9), Some(2.0));
    }

    #[test]
    fn snapshot_states_percentiles() {
        let mut m = MetricsRegistry::new();
        m.observe_with_bounds("lat", &[1.0, 2.0], 0.5);
        m.observe_with_bounds("lat", &[1.0, 2.0], 1.5);
        let s = m.snapshot();
        assert!(s.contains("histogram lat count=2 sum=2 p50=1 p90="), "{s}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(&[1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.9), None);
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn single_sample_quantile_lines_are_exact() {
        // One observation in the first bucket: every quantile interpolates
        // from zero toward the bucket bound, so p-q lands exactly at q.
        let mut m = MetricsRegistry::new();
        m.observe_with_bounds("lat", &[1.0, 2.0], 0.5);
        let h = m.histogram("lat").expect("recorded");
        assert!((h.quantile(0.5).unwrap() - 0.5).abs() < 1e-12);
        assert!((h.quantile(0.9).unwrap() - 0.9).abs() < 1e-12);
        assert!((h.quantile(0.99).unwrap() - 0.99).abs() < 1e-12);
        // The full p50/p90/p99 line renders those values verbatim.
        let s = m.snapshot();
        assert!(
            s.contains("histogram lat count=1 sum=0.5 p50=0.5 p90=0.9 p99=0.99"),
            "{s}"
        );
    }

    #[test]
    fn namespacing_prefixes_every_metric() {
        let mut m = MetricsRegistry::new();
        m.inc("hits", 4);
        m.sample("rate", 0, 0.5);
        let n = m.namespaced("cache");
        assert_eq!(n.counter("cache.hits"), 4);
        assert_eq!(n.series("cache.rate"), &[(0, 0.5)]);
        assert_eq!(n.counter("hits"), 0);
    }
}
