//! The cross-run perf-history ledger: an append-only JSONL trajectory of
//! benchmark makespans and their attribution buckets across PRs.
//!
//! Each [`HistoryRow`] is one `(bench, revision)` measurement — makespan,
//! iteration count, convergence flag and the five attribution buckets —
//! serialized as one schema-tagged JSON line ([`HistoryRow::to_json_line`],
//! schema [`PERF_HISTORY_SCHEMA`]). The committed ledger lives at
//! `bench_baselines/PERF_HISTORY.jsonl`; `cargo xtask perf-history`
//! appends to and renders it, and the CI bench-diff job gates on the
//! tail so a makespan regression cannot land silently.
//!
//! Rendering ([`render_history`]) groups rows by bench, draws a text
//! sparkline of the makespan trajectory (oldest → newest) and tabulates
//! the per-revision rows. Everything is deterministic in the ledger
//! contents.

use crate::json::{escape_into, parse, write_f64, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag stamped into every ledger row.
pub const PERF_HISTORY_SCHEMA: &str = "shrinksvm-perfhist/v1";

/// One `(bench, revision)` measurement in the ledger.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistoryRow {
    /// Benchmark name (`smoke`, `hotpath`, ...).
    pub bench: String,
    /// Source revision the measurement was taken at (short git rev, or
    /// `unknown` outside a checkout).
    pub rev: String,
    /// End-to-end simulated makespan, seconds.
    pub makespan: f64,
    /// Solver iterations to convergence.
    pub iterations: f64,
    /// Whether the run converged within its budget.
    pub converged: bool,
    /// Summed per-rank compute charge, simulated seconds.
    pub compute: f64,
    /// Summed per-rank transfer charge, simulated seconds.
    pub transfer: f64,
    /// Summed per-rank idle time, simulated seconds.
    pub idle: f64,
    /// Summed per-rank retransmission penalties, simulated seconds.
    pub retransmit: f64,
    /// Simulated time lost to crash recovery.
    pub recovery: f64,
}

fn req_num(doc: &Value, key: &str, what: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{what}: missing numeric field {key:?}"))
}

impl HistoryRow {
    /// Build a row from a parsed `BENCH_*.json` document plus, when the
    /// run was traced, its `PERF_*.json` — the PERF buckets are exact
    /// (they include retransmit and recovery); without it the bench
    /// report's compute/transfer/idle split is used and the last two
    /// buckets stay zero.
    ///
    /// # Errors
    ///
    /// A malformed bench document (no name, makespan or iteration
    /// fields) or a PERF document missing its bucket table.
    pub fn from_reports(
        bench: &Value,
        perf: Option<&Value>,
        rev: &str,
    ) -> Result<HistoryRow, String> {
        let name = bench
            .get("name")
            .and_then(Value::as_str)
            .ok_or("bench report: missing string field \"name\"")?
            .to_string();
        let what = format!("bench report {name:?}");
        let mut row = HistoryRow {
            bench: name,
            rev: rev.to_string(),
            makespan: req_num(bench, "modeled_time", &what)?,
            iterations: req_num(bench, "iterations", &what)?,
            converged: bench
                .get("converged")
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("{what}: missing bool field \"converged\""))?,
            compute: req_num(bench, "compute_time", &what)?,
            transfer: req_num(bench, "transfer_time", &what)?,
            idle: req_num(bench, "idle_time", &what)?,
            retransmit: 0.0,
            recovery: 0.0,
        };
        if let Some(perf) = perf {
            let buckets = perf
                .get("buckets")
                .ok_or_else(|| format!("{what}: PERF document has no buckets"))?;
            row.compute = req_num(buckets, "compute", &what)?;
            row.transfer = req_num(buckets, "transfer", &what)?;
            row.idle = req_num(buckets, "idle", &what)?;
            row.retransmit = req_num(buckets, "retransmit", &what)?;
            row.recovery = req_num(buckets, "recovery", &what)?;
        }
        Ok(row)
    }

    /// Serialize as one JSONL line (no trailing newline), keys in fixed
    /// order, schema-tagged.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema\":");
        escape_into(&mut out, PERF_HISTORY_SCHEMA);
        out.push_str(",\"bench\":");
        escape_into(&mut out, &self.bench);
        out.push_str(",\"rev\":");
        escape_into(&mut out, &self.rev);
        out.push_str(",\"makespan\":");
        write_f64(&mut out, self.makespan);
        out.push_str(",\"iterations\":");
        write_f64(&mut out, self.iterations);
        out.push_str(",\"converged\":");
        out.push_str(if self.converged { "true" } else { "false" });
        for (k, v) in [
            ("compute", self.compute),
            ("transfer", self.transfer),
            ("idle", self.idle),
            ("retransmit", self.retransmit),
            ("recovery", self.recovery),
        ] {
            out.push(',');
            escape_into(&mut out, k);
            out.push(':');
            write_f64(&mut out, v);
        }
        out.push('}');
        out
    }

    /// Parse one ledger line.
    ///
    /// # Errors
    ///
    /// Malformed JSON, a wrong/missing schema tag, or missing fields.
    pub fn parse_line(line: &str) -> Result<HistoryRow, String> {
        let v = parse(line)?;
        match v.get("schema").and_then(Value::as_str) {
            Some(s) if s == PERF_HISTORY_SCHEMA => {}
            other => {
                return Err(format!(
                    "ledger row schema {other:?} (want {PERF_HISTORY_SCHEMA:?})"
                ))
            }
        }
        let what = "ledger row";
        Ok(HistoryRow {
            bench: v
                .get("bench")
                .and_then(Value::as_str)
                .ok_or("ledger row: missing string field \"bench\"")?
                .to_string(),
            rev: v
                .get("rev")
                .and_then(Value::as_str)
                .ok_or("ledger row: missing string field \"rev\"")?
                .to_string(),
            makespan: req_num(&v, "makespan", what)?,
            iterations: req_num(&v, "iterations", what)?,
            converged: v
                .get("converged")
                .and_then(Value::as_bool)
                .ok_or("ledger row: missing bool field \"converged\"")?,
            compute: req_num(&v, "compute", what)?,
            transfer: req_num(&v, "transfer", what)?,
            idle: req_num(&v, "idle", what)?,
            retransmit: req_num(&v, "retransmit", what)?,
            recovery: req_num(&v, "recovery", what)?,
        })
    }
}

/// Parse a whole ledger (blank lines skipped), preserving row order.
///
/// # Errors
///
/// The first malformed row, with its 1-based line number.
pub fn parse_ledger(text: &str) -> Result<Vec<HistoryRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        rows.push(HistoryRow::parse_line(line).map_err(|e| format!("ledger line {}: {e}", i + 1))?);
    }
    Ok(rows)
}

/// A min–max scaled text sparkline of `values` (oldest on the left).
/// Flat or single-point series render mid-height.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if hi - lo <= 0.0 || !(hi - lo).is_finite() {
                '▄'
            } else {
                let t = (v - lo) / (hi - lo);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Render the ledger: per bench, the makespan sparkline (oldest →
/// newest) and a table of every row's revision, makespan and bucket
/// split.
pub fn render_history(rows: &[HistoryRow]) -> String {
    let mut by_bench: BTreeMap<&str, Vec<&HistoryRow>> = BTreeMap::new();
    for r in rows {
        by_bench.entry(&r.bench).or_default().push(r);
    }
    let mut out = String::with_capacity(1024);
    out.push_str("== perf history ==\n");
    if rows.is_empty() {
        out.push_str("(ledger is empty)\n");
        return out;
    }
    for (bench, rows) in &by_bench {
        let series: Vec<f64> = rows.iter().map(|r| r.makespan).collect();
        let first = series.first().copied().unwrap_or(0.0);
        let last = series.last().copied().unwrap_or(0.0);
        let trend = if first > 0.0 {
            100.0 * (last - first) / first
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{bench}: {} rows, makespan {first:.6}s -> {last:.6}s ({trend:+.2}% since first)  {}",
            rows.len(),
            sparkline(&series)
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>8} {:>11} {:>11} {:>11} {:>11}",
            "rev", "makespan", "iters", "compute", "transfer", "idle", "recovery"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "  {:<12} {:>12.6} {:>8} {:>11.6} {:>11.6} {:>11.6} {:>11.6}{}",
                r.rev,
                r.makespan,
                r.iterations,
                r.compute,
                r.transfer,
                r.idle,
                r.recovery,
                if r.converged { "" } else { "  NOT CONVERGED" }
            );
        }
    }
    out
}

/// Gate a new row against the committed trajectory: fails when the
/// bench's latest committed makespan would regress by more than `frac`
/// (e.g. `0.10` = 10%). A bench with no committed history always
/// passes — first rows seed the ledger.
///
/// # Errors
///
/// A human-readable regression message naming the bench, both makespans
/// and the threshold.
pub fn gate_against_tail(
    committed: &[HistoryRow],
    new_row: &HistoryRow,
    frac: f64,
) -> Result<(), String> {
    let Some(tail) = committed.iter().rev().find(|r| r.bench == new_row.bench) else {
        return Ok(());
    };
    let limit = tail.makespan * (1.0 + frac);
    if new_row.makespan > limit {
        return Err(format!(
            "perf-history gate: bench {:?} makespan {:.9}s regresses the committed tail \
             {:.9}s (rev {}) by more than {:.0}% (limit {:.9}s)",
            new_row.bench,
            new_row.makespan,
            tail.makespan,
            tail.rev,
            frac * 100.0,
            limit
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::check;

    fn row(bench: &str, rev: &str, makespan: f64) -> HistoryRow {
        HistoryRow {
            bench: bench.to_string(),
            rev: rev.to_string(),
            makespan,
            iterations: 900.0,
            converged: true,
            compute: makespan * 3.0,
            transfer: makespan * 0.5,
            idle: makespan * 0.5,
            retransmit: 0.0,
            recovery: 0.0,
        }
    }

    #[test]
    fn rows_round_trip_through_jsonl() {
        let r = row("smoke", "abc1234", 0.00125);
        let line = r.to_json_line();
        check(&line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        assert!(
            line.contains("\"schema\":\"shrinksvm-perfhist/v1\""),
            "{line}"
        );
        let back = HistoryRow::parse_line(&line).expect("parse");
        assert_eq!(back, r);
        let ledger = format!(
            "{}\n{}\n\n",
            line,
            row("hotpath", "abc1234", 0.005).to_json_line()
        );
        let rows = parse_ledger(&ledger).expect("ledger");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].bench, "hotpath");
    }

    #[test]
    fn parse_rejects_foreign_and_broken_rows() {
        assert!(HistoryRow::parse_line("{\"schema\":1}").is_err());
        assert!(HistoryRow::parse_line("{not json").is_err());
        let err = parse_ledger("{\"schema\":\"nope\"}\n").expect_err("bad schema");
        assert!(err.contains("ledger line 1"), "{err}");
    }

    #[test]
    fn from_reports_prefers_perf_buckets() {
        let bench = parse(
            "{\"schema\":1,\"name\":\"smoke\",\"modeled_time\":1.5,\"iterations\":12,\
             \"converged\":true,\"compute_time\":4.0,\"transfer_time\":1.0,\"idle_time\":1.0}",
        )
        .expect("bench");
        let no_perf = HistoryRow::from_reports(&bench, None, "r1").expect("row");
        assert_eq!(no_perf.compute, 4.0);
        assert_eq!(no_perf.retransmit, 0.0);
        let perf = parse(
            "{\"schema\":\"shrinksvm-perf/v1\",\"buckets\":{\"compute\":4.5,\"transfer\":0.75,\
             \"idle\":0.5,\"retransmit\":0.25,\"recovery\":0.0}}",
        )
        .expect("perf");
        let with_perf = HistoryRow::from_reports(&bench, Some(&perf), "r1").expect("row");
        assert_eq!(with_perf.compute, 4.5);
        assert_eq!(with_perf.retransmit, 0.25);
        assert_eq!(with_perf.bench, "smoke");
        assert_eq!(with_perf.rev, "r1");
    }

    #[test]
    fn sparkline_scales_and_handles_flat_series() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0]), "▄");
        assert_eq!(sparkline(&[2.0, 2.0, 2.0]), "▄▄▄");
        let s = sparkline(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'), "{s}");
        assert!(s.ends_with('█'), "{s}");
    }

    #[test]
    fn render_groups_by_bench_with_sparkline() {
        let rows = vec![
            row("smoke", "r1", 2.0),
            row("hotpath", "r1", 8.0),
            row("smoke", "r2", 1.0),
        ];
        let text = render_history(&rows);
        assert!(text.contains("smoke: 2 rows"), "{text}");
        assert!(text.contains("hotpath: 1 rows"), "{text}");
        assert!(text.contains("-50.00% since first"), "{text}");
        assert!(text.contains('█'), "{text}");
        assert!(render_history(&[]).contains("empty"), "empty ledger note");
    }

    #[test]
    fn gate_flags_tail_regressions_only() {
        let committed = vec![row("smoke", "r1", 2.0), row("smoke", "r2", 1.0)];
        // 5% over the tail (1.0) passes a 10% gate.
        gate_against_tail(&committed, &row("smoke", "head", 1.05), 0.10).expect("within gate");
        // 20% over fails, and the message names the tail rev.
        let err = gate_against_tail(&committed, &row("smoke", "head", 1.2), 0.10)
            .expect_err("regression");
        assert!(err.contains("r2"), "{err}");
        assert!(err.contains("smoke"), "{err}");
        // Unknown benches seed freely.
        gate_against_tail(&committed, &row("new_bench", "head", 99.0), 0.10).expect("seeds");
    }
}
