//! A span/event timeline keyed on *simulated* time.
//!
//! Each rank records into its own [`TrackRecorder`] while it runs; the
//! harness merges the per-rank buffers into one [`Timeline`], which can be
//! rendered as Chrome trace-event JSON (loadable by Perfetto /
//! `chrome://tracing`) or as a plain-text per-rank listing.
//!
//! All timestamps are simulated seconds from the run's cost model — never
//! the host clock — so identical seeds produce byte-identical traces.

use crate::json::{escape_into, write_f64};
use std::fmt::Write as _;

/// One timeline entry on some rank's track.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A closed interval of activity: `[t0, t1]` simulated seconds.
    Span {
        /// Rank (Chrome `tid`).
        track: u32,
        /// Event name (e.g. `allreduce`).
        name: String,
        /// Category (e.g. `coll`, `compute`, `p2p`, `solver`).
        cat: String,
        /// Start, simulated seconds.
        t0: f64,
        /// End, simulated seconds.
        t1: f64,
    },
    /// A point event (e.g. an injected fault).
    Instant {
        /// Rank (Chrome `tid`).
        track: u32,
        /// Event name.
        name: String,
        /// Category.
        cat: String,
        /// Time, simulated seconds.
        t: f64,
    },
    /// A sampled numeric series (Chrome counter track).
    Counter {
        /// Rank (Chrome `tid`).
        track: u32,
        /// Series name.
        name: String,
        /// Sample time, simulated seconds.
        t: f64,
        /// Sample value.
        value: f64,
    },
}

impl Event {
    /// The rank this event belongs to.
    pub fn track(&self) -> u32 {
        match *self {
            Event::Span { track, .. }
            | Event::Instant { track, .. }
            | Event::Counter { track, .. } => track,
        }
    }

    /// Start time in simulated seconds.
    pub fn start(&self) -> f64 {
        match *self {
            Event::Span { t0, .. } => t0,
            Event::Instant { t, .. } | Event::Counter { t, .. } => t,
        }
    }

    /// Total order making merged timelines deterministic: by start time
    /// (nonnegative finite, so the bit pattern orders correctly), then
    /// track, then kind, then name, then end time. Crate-visible so the
    /// health monitor can order mixed event slices the same way the
    /// timeline does.
    pub(crate) fn sort_key(&self) -> (u64, u32, u8, &str, u64) {
        match self {
            Event::Span {
                track,
                name,
                t0,
                t1,
                ..
            } => (t0.to_bits(), *track, 0, name.as_str(), t1.to_bits()),
            Event::Instant { track, name, t, .. } => (t.to_bits(), *track, 1, name.as_str(), 0),
            Event::Counter {
                track,
                name,
                t,
                value,
            } => (t.to_bits(), *track, 2, name.as_str(), value.to_bits()),
        }
    }
}

/// One rank's in-flight event buffer.
#[derive(Clone, Debug, Default)]
pub struct TrackRecorder {
    track: u32,
    events: Vec<Event>,
}

impl TrackRecorder {
    /// A recorder for rank `track`.
    pub fn new(track: u32) -> Self {
        TrackRecorder {
            track,
            events: Vec::new(),
        }
    }

    /// The rank this recorder belongs to.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Record a `[t0, t1]` span. Zero-length and degenerate (reversed)
    /// intervals are clamped to a point span at `t0`.
    pub fn span(&mut self, name: &str, cat: &str, t0: f64, t1: f64) {
        self.events.push(Event::Span {
            track: self.track,
            name: name.to_string(),
            cat: cat.to_string(),
            t0,
            t1: t1.max(t0),
        });
    }

    /// Record a point event at `t`.
    pub fn instant(&mut self, name: &str, cat: &str, t: f64) {
        self.events.push(Event::Instant {
            track: self.track,
            name: name.to_string(),
            cat: cat.to_string(),
            t,
        });
    }

    /// Record a counter sample at `t`.
    pub fn counter(&mut self, name: &str, t: f64, value: f64) {
        self.events.push(Event::Counter {
            track: self.track,
            name: name.to_string(),
            t,
            value,
        });
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Hand the buffer over for merging.
    pub fn finish(self) -> Vec<Event> {
        self.events
    }
}

/// A merged, normalized multi-rank timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    events: Vec<Event>,
    tracks: u32,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Merge per-rank buffers (indexed by rank) into one timeline and
    /// normalize it.
    pub fn from_tracks(tracks: Vec<Vec<Event>>) -> Self {
        let mut tl = Timeline {
            tracks: tracks.len() as u32,
            events: tracks.into_iter().flatten().collect(),
        };
        tl.normalize();
        tl
    }

    /// Append one event (e.g. a driver-side recovery marker).
    pub fn push(&mut self, event: Event) {
        self.tracks = self.tracks.max(event.track() + 1);
        self.events.push(event);
    }

    /// Sort into the deterministic total order. Emitters call this, so
    /// identical runs render byte-identically regardless of the order
    /// events were merged in.
    pub fn normalize(&mut self) {
        self.events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    }

    /// All events, in normalized order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of rank tracks.
    pub fn tracks(&self) -> u32 {
        self.tracks
    }

    /// Event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The Chrome `tid` an event renders on. Injected-fault events
    /// (`cat == "fault"`: retransmit instants, fault-ledger projections,
    /// recovery restarts) and health-monitor verdicts (`cat == "health"`)
    /// get a dedicated per-rank track *above* the rank compute tracks
    /// (`tid = tracks + rank`) so Perfetto does not interleave them with
    /// the rank's spans; everything else renders on `tid = rank`.
    fn chrome_tid(&self, track: u32, cat: &str) -> u32 {
        if cat == "fault" || cat == "health" {
            self.tracks + track
        } else {
            track
        }
    }

    /// Render as Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// object form). Timestamps are microseconds (`ts`/`dur`), `pid` 0 and
    /// `tid` = rank (fault events get `tid` = tracks + rank — see
    /// [`Timeline::chrome_tid`]), per the trace-event format; load the
    /// file in Perfetto or `chrome://tracing`. Thread-name metadata
    /// records label every `tid` in use.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        // Thread-name metadata first: one per rank track, plus one per
        // fault/health overlay track that actually has events (computed
        // from the normalized event list, so the set is deterministic).
        let mut fault_tracks: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Span { track, cat, .. } | Event::Instant { track, cat, .. }
                    if cat == "fault" || cat == "health" =>
                {
                    Some(*track)
                }
                _ => None,
            })
            .collect();
        fault_tracks.sort_unstable();
        fault_tracks.dedup();
        for track in 0..self.tracks {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{track},\
                 \"args\":{{\"name\":\"rank {track}\"}}}}"
            );
        }
        for track in &fault_tracks {
            if !first {
                out.push(',');
            }
            first = false;
            let tid = self.tracks + track;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"rank {track} faults\"}}}}"
            );
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            match e {
                Event::Span {
                    track,
                    name,
                    cat,
                    t0,
                    t1,
                } => {
                    let tid = self.chrome_tid(*track, cat);
                    out.push_str("{\"name\":");
                    escape_into(&mut out, name);
                    out.push_str(",\"cat\":");
                    escape_into(&mut out, cat);
                    out.push_str(",\"ph\":\"X\",\"ts\":");
                    write_f64(&mut out, t0 * 1e6);
                    out.push_str(",\"dur\":");
                    write_f64(&mut out, (t1 - t0) * 1e6);
                    let _ = write!(out, ",\"pid\":0,\"tid\":{tid}}}");
                }
                Event::Instant {
                    track,
                    name,
                    cat,
                    t,
                } => {
                    let tid = self.chrome_tid(*track, cat);
                    out.push_str("{\"name\":");
                    escape_into(&mut out, name);
                    out.push_str(",\"cat\":");
                    escape_into(&mut out, cat);
                    out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
                    write_f64(&mut out, t * 1e6);
                    let _ = write!(out, ",\"pid\":0,\"tid\":{tid}}}");
                }
                Event::Counter {
                    track,
                    name,
                    t,
                    value,
                } => {
                    out.push_str("{\"name\":");
                    escape_into(&mut out, name);
                    out.push_str(",\"ph\":\"C\",\"ts\":");
                    write_f64(&mut out, t * 1e6);
                    let _ = write!(out, ",\"pid\":0,\"tid\":{track},\"args\":{{\"value\":");
                    write_f64(&mut out, *value);
                    out.push_str("}}");
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Render as a plain-text per-rank listing (one section per track,
    /// events in time order, fixed-precision timestamps).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for track in 0..self.tracks.max(1) {
            let mut wrote_header = false;
            for e in &self.events {
                if e.track() != track {
                    continue;
                }
                if !wrote_header {
                    let _ = writeln!(out, "-- rank {track} --");
                    wrote_header = true;
                }
                match e {
                    Event::Span {
                        name, cat, t0, t1, ..
                    } => {
                        let _ = writeln!(out, "  [{t0:.9}s +{:.9}s] {cat:<8} {name}", t1 - t0);
                    }
                    Event::Instant { name, cat, t, .. } => {
                        let _ = writeln!(out, "  [{t:.9}s           !] {cat:<8} {name}");
                    }
                    Event::Counter { name, t, value, .. } => {
                        let _ = writeln!(out, "  [{t:.9}s           #] counter  {name} = {value}");
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::check;

    fn sample() -> Timeline {
        let mut r0 = TrackRecorder::new(0);
        r0.span("compute", "compute", 0.0, 1.5);
        r0.instant("drop", "fault", 0.75);
        let mut r1 = TrackRecorder::new(1);
        r1.span("allreduce", "coll", 0.5, 2.0);
        r1.counter("active_set", 1.0, 120.0);
        Timeline::from_tracks(vec![r0.finish(), r1.finish()])
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let tl = sample();
        let doc = tl.to_chrome_json();
        check(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"tid\":1"));
    }

    #[test]
    fn empty_timeline_is_well_formed_too() {
        check(&Timeline::new().to_chrome_json()).unwrap();
    }

    #[test]
    fn timestamps_are_microseconds() {
        let tl = sample();
        let doc = tl.to_chrome_json();
        // the 1.5s compute span: ts 0, dur 1500000
        assert!(doc.contains("\"dur\":1500000"), "{doc}");
    }

    #[test]
    fn normalize_gives_one_canonical_order() {
        let mut a = TrackRecorder::new(0);
        a.span("x", "c", 1.0, 2.0);
        a.instant("y", "c", 0.5);
        let mut fwd = Timeline::from_tracks(vec![a.clone().finish()]);
        let mut events = a.finish();
        events.reverse();
        let mut rev = Timeline::from_tracks(vec![events]);
        fwd.normalize();
        rev.normalize();
        assert_eq!(fwd.to_chrome_json(), rev.to_chrome_json());
    }

    #[test]
    fn text_rendering_groups_by_rank() {
        let txt = sample().render_text();
        assert!(txt.contains("-- rank 0 --"));
        assert!(txt.contains("-- rank 1 --"));
        assert!(txt.contains("allreduce"));
        assert!(txt.contains("active_set"));
        let r0 = txt.find("-- rank 0 --").unwrap();
        let r1 = txt.find("-- rank 1 --").unwrap();
        assert!(r0 < r1);
    }

    #[test]
    fn degenerate_spans_are_clamped() {
        let mut r = TrackRecorder::new(0);
        r.span("weird", "c", 2.0, 1.0);
        match &r.finish()[0] {
            Event::Span { t0, t1, .. } => assert_eq!((*t0, *t1), (2.0, 2.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_events_render_on_a_dedicated_track() {
        let tl = sample(); // 2 rank tracks; fault instant on rank 0
        let doc = tl.to_chrome_json();
        // rank 0's fault instant moves to tid 2 (= tracks + rank)...
        assert!(
            doc.contains("\"name\":\"drop\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":750000,\"pid\":0,\"tid\":2"),
            "{doc}"
        );
        // ...while rank 0's compute span stays on tid 0.
        assert!(
            doc.contains("\"name\":\"compute\",\"cat\":\"compute\",\"ph\":\"X\",\"ts\":0,\"dur\":1500000,\"pid\":0,\"tid\":0"),
            "{doc}"
        );
        // Thread names label both the rank tracks and the fault track.
        for meta in ["\"rank 0\"", "\"rank 1\"", "\"rank 0 faults\""] {
            assert!(doc.contains(meta), "missing {meta} in {doc}");
        }
        // No fault events on rank 1, so no fault-track label for it.
        assert!(!doc.contains("\"rank 1 faults\""), "{doc}");
    }

    #[test]
    fn push_extends_track_count() {
        let mut tl = Timeline::new();
        tl.push(Event::Instant {
            track: 3,
            name: "recovery".into(),
            cat: "ckpt".into(),
            t: 1.0,
        });
        assert_eq!(tl.tracks(), 4);
        assert_eq!(tl.len(), 1);
    }
}
