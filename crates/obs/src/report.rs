//! Machine-readable benchmark run reports (`BENCH_<name>.json`).
//!
//! One [`BenchReport`] summarizes one benchmark run: modeled (simulated)
//! time, speedup against the Original baseline, iteration count, the
//! comm/compute split and fault/recovery counts, plus free-form named
//! extras. The JSON layout is flat and key-sorted so same-seed runs emit
//! byte-identical files, giving perf PRs a diffable trajectory baseline.

use crate::json::{escape_into, write_f64};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Schema version stamped into every report.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// A machine-readable summary of one benchmark run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    /// Report name; the file is written as `BENCH_<name>.json`.
    pub name: String,
    /// End-to-end modeled (simulated) time in seconds — the makespan.
    pub modeled_time: f64,
    /// Speedup vs the Original (no-shrinking) baseline, when known.
    pub speedup_vs_original: Option<f64>,
    /// Solver iterations to convergence.
    pub iterations: u64,
    /// Whether the run converged within its iteration budget.
    pub converged: bool,
    /// Ranks in the run.
    pub ranks: u32,
    /// Summed per-rank compute charge, simulated seconds.
    pub compute_time: f64,
    /// Summed per-rank wire-transfer charge (bytes·G + latency), simulated
    /// seconds.
    pub transfer_time: f64,
    /// Summed per-rank idle time waiting on slower peers, simulated
    /// seconds.
    pub idle_time: f64,
    /// Injected transport faults the run absorbed.
    pub faults_survived: u64,
    /// Crash-recovery restarts performed.
    pub recoveries: u64,
    /// Simulated seconds lost to failed attempts before recovery.
    pub recovery_cost: f64,
    /// Additional named scalars (accuracy, cache hit rate, ...).
    pub extras: BTreeMap<String, f64>,
}

impl BenchReport {
    /// A report named `name` with everything else zeroed.
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            ..BenchReport::default()
        }
    }

    /// Attach a named extra scalar (builder style).
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extras.insert(key.to_string(), value);
        self
    }

    /// The filename this report writes to: `BENCH_<name>.json`.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serialize as a single flat JSON object with keys in a fixed order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"schema\":");
        out.push_str(&BENCH_SCHEMA_VERSION.to_string());
        out.push_str(",\"name\":");
        escape_into(&mut out, &self.name);
        out.push_str(",\"modeled_time\":");
        write_f64(&mut out, self.modeled_time);
        out.push_str(",\"speedup_vs_original\":");
        match self.speedup_vs_original {
            Some(v) => write_f64(&mut out, v),
            None => out.push_str("null"),
        }
        out.push_str(",\"iterations\":");
        out.push_str(&self.iterations.to_string());
        out.push_str(",\"converged\":");
        out.push_str(if self.converged { "true" } else { "false" });
        out.push_str(",\"ranks\":");
        out.push_str(&self.ranks.to_string());
        out.push_str(",\"compute_time\":");
        write_f64(&mut out, self.compute_time);
        out.push_str(",\"transfer_time\":");
        write_f64(&mut out, self.transfer_time);
        out.push_str(",\"idle_time\":");
        write_f64(&mut out, self.idle_time);
        out.push_str(",\"comm_time\":");
        write_f64(&mut out, self.transfer_time + self.idle_time);
        out.push_str(",\"faults_survived\":");
        out.push_str(&self.faults_survived.to_string());
        out.push_str(",\"recoveries\":");
        out.push_str(&self.recoveries.to_string());
        out.push_str(",\"recovery_cost\":");
        write_f64(&mut out, self.recovery_cost);
        out.push_str(",\"extras\":{");
        let mut first = true;
        for (k, v) in &self.extras {
            if !first {
                out.push(',');
            }
            first = false;
            escape_into(&mut out, k);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("}}");
        out
    }

    /// Write `BENCH_<name>.json` under `dir` (created if missing) and
    /// return the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or the write.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.filename());
        let mut doc = self.to_json();
        doc.push('\n');
        std::fs::write(&path, doc)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::check;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("smoke");
        r.modeled_time = 1.25;
        r.speedup_vs_original = Some(3.5);
        r.iterations = 420;
        r.converged = true;
        r.ranks = 4;
        r.compute_time = 0.9;
        r.transfer_time = 0.2;
        r.idle_time = 0.15;
        r.faults_survived = 2;
        r.with_extra("test_accuracy", 0.975)
            .with_extra("cache_hit_rate", 0.5)
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let doc = sample().to_json();
        check(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        for key in [
            "\"schema\":1",
            "\"name\":\"smoke\"",
            "\"modeled_time\":1.25",
            "\"speedup_vs_original\":3.5",
            "\"iterations\":420",
            "\"converged\":true",
            "\"ranks\":4",
            "\"comm_time\":", // derived sum is present
            "\"cache_hit_rate\":0.5",
            "\"test_accuracy\":0.975",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn missing_baseline_renders_null() {
        let mut r = sample();
        r.speedup_vs_original = None;
        let doc = r.to_json();
        check(&doc).expect("well-formed");
        assert!(doc.contains("\"speedup_vs_original\":null"));
    }

    #[test]
    fn serialization_is_byte_stable() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn filename_embeds_report_name() {
        assert_eq!(sample().filename(), "BENCH_smoke.json");
    }

    #[test]
    fn write_emits_the_file() {
        let dir = std::env::temp_dir().join("shrinksvm_obs_report_test");
        let path = sample().write(&dir).expect("write report");
        let body = std::fs::read_to_string(&path).expect("read back");
        check(body.trim_end()).expect("well-formed on disk");
        std::fs::remove_dir_all(&dir).ok();
    }
}
