//! Cross-rank dependency log and exact critical-path analysis.
//!
//! The [`Timeline`](crate::timeline::Timeline) answers *what happened
//! when*; this module answers *why the makespan is what it is*. Each rank
//! records a [`DepEvent`] for every simulated-clock mutation — compute
//! charges, send overheads, matched receives (with the exact LogGP charge
//! components the simulator used) — plus collective entry/exit intervals
//! for labeling. The merged [`DepLog`] is a complete, replayable event DAG:
//!
//! * an **identity replay** re-executes the simulator's f64 arithmetic in
//!   the original per-rank operation order and cross-checks every recorded
//!   clock bit-for-bit, proving the log is a faithful transcript;
//! * a **backward walk** from the makespan extracts the exact critical
//!   path — the chain of `rank/op/tag` hops whose endpoints are bitwise
//!   contiguous and telescope from 0 to the makespan;
//! * **what-if replays** re-walk the DAG with edge weights zeroed
//!   (zero-latency network, infinite kernel cache, perfect load balance)
//!   to project where the makespan would go.
//!
//! Everything is pure f64 arithmetic over recorded values, so same-seed
//! runs produce byte-identical analyses.

use std::collections::{BTreeMap, VecDeque};

/// One simulated-clock mutation (or collective interval) on one rank.
///
/// The variants record the exact *charge values* the simulator applied,
/// not just interval endpoints, so a replay can reproduce every clock's
/// f64 arithmetic in the original operation order:
///
/// * `Compute` — `clock += secs` (after any fault-plan slowdown
///   inflation; `secs` is the inflated value actually charged).
/// * `Send` — `clock += overhead`; the message departs at the new clock.
/// * `Recv` — `arrive = (depart + wire) + penalty;
///   clock = max(clock, arrive)`, the association order the simulator
///   uses.
/// * `Coll` — a `[t0, t1]` collective interval, recorded at exit purely
///   for labeling (no clock effect).
#[derive(Clone, Debug, PartialEq)]
pub enum DepEvent {
    /// A compute charge: `clock += secs`.
    Compute {
        /// Clock before the charge.
        t0: f64,
        /// Charged seconds (inflated by any active slowdown rule).
        secs: f64,
        /// The charge under an infinitely large kernel cache (every
        /// lookup a hit). Equals `secs` when the cache cannot help.
        alt_secs: f64,
        /// Charge class (`"compute"`, `"fused_sweep"`, `"recon"`, ...).
        class: &'static str,
    },
    /// A send: `clock += overhead`, then the message departs.
    Send {
        /// Clock before the overhead charge.
        t0: f64,
        /// Sender CPU overhead charged.
        overhead: f64,
        /// Destination rank.
        dst: u32,
        /// Message tag.
        tag: u64,
        /// Per-`(src, dst)` link sequence number — the match key.
        link_seq: u64,
    },
    /// A matched receive: `clock = max(clock, (depart + wire) + penalty)`.
    Recv {
        /// Clock at match time (before any jump).
        t0: f64,
        /// Source rank.
        src: u32,
        /// Message tag.
        tag: u64,
        /// The sender's link sequence number — the match key.
        link_seq: u64,
        /// Sender's clock at departure (after its send overhead).
        depart: f64,
        /// Wire charge: `latency + bytes·gap_per_byte`.
        wire: f64,
        /// In-flight penalty (injected delays + retransmission backoff).
        penalty: f64,
    },
    /// A collective's `[t0, t1]` interval, for hop labeling only.
    Coll {
        /// Collective name (`"allreduce"`, `"bcast"`, ...).
        name: &'static str,
        /// Clock at entry.
        t0: f64,
        /// Clock at exit.
        t1: f64,
    },
    /// A nonblocking collective's initiation: opens a *virtual-clock
    /// window*. The simulator executes the collective eagerly with the
    /// rank clock acting as a virtual clock, so the window's inner
    /// `Send`/`Recv` events carry virtual times `>= t0`; the matching
    /// [`DepEvent::IcollDone`] rewinds the clock to `t0`.
    IcollStart {
        /// Clock at initiation (the virtual clock's starting value).
        t0: f64,
    },
    /// A nonblocking collective's virtual completion: closes the window
    /// opened by the matching [`DepEvent::IcollStart`] and rewinds the
    /// clock to the initiation instant.
    IcollDone {
        /// Clock at initiation (the value the rewind restores).
        t0: f64,
        /// Virtual completion time the matching wait clamps to.
        done: f64,
    },
    /// A wait on a nonblocking collective:
    /// `clock = max(clock, done)` where `done` is the matching window's
    /// completion time (windows and waits match FIFO per rank).
    IcollWait {
        /// Clock at wait time (before any jump).
        t0: f64,
    },
}

impl DepEvent {
    /// The event's recorded start clock.
    fn t0(&self) -> f64 {
        match *self {
            DepEvent::Compute { t0, .. }
            | DepEvent::Send { t0, .. }
            | DepEvent::Recv { t0, .. }
            | DepEvent::Coll { t0, .. }
            | DepEvent::IcollStart { t0 }
            | DepEvent::IcollDone { t0, .. }
            | DepEvent::IcollWait { t0 } => t0,
        }
    }
}

/// One rank's in-flight dependency buffer (mirror of
/// [`TrackRecorder`](crate::timeline::TrackRecorder)).
#[derive(Clone, Debug, Default)]
pub struct DepRecorder {
    events: Vec<DepEvent>,
}

impl DepRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        DepRecorder::default()
    }

    /// Record a compute charge (call with the clock *before* the charge).
    pub fn compute(&mut self, t0: f64, secs: f64, alt_secs: f64, class: &'static str) {
        self.events.push(DepEvent::Compute {
            t0,
            secs,
            alt_secs,
            class,
        });
    }

    /// Record a send (call with the clock *before* the overhead charge).
    pub fn send(&mut self, t0: f64, overhead: f64, dst: u32, tag: u64, link_seq: u64) {
        self.events.push(DepEvent::Send {
            t0,
            overhead,
            dst,
            tag,
            link_seq,
        });
    }

    /// Record a matched receive (call with the clock at match time,
    /// *before* any jump to the arrival clock).
    #[allow(clippy::too_many_arguments)]
    pub fn recv(
        &mut self,
        t0: f64,
        src: u32,
        tag: u64,
        link_seq: u64,
        depart: f64,
        wire: f64,
        penalty: f64,
    ) {
        self.events.push(DepEvent::Recv {
            t0,
            src,
            tag,
            link_seq,
            depart,
            wire,
            penalty,
        });
    }

    /// Record a finished collective's interval.
    pub fn coll(&mut self, name: &'static str, t0: f64, t1: f64) {
        self.events.push(DepEvent::Coll { name, t0, t1 });
    }

    /// Record a nonblocking collective's initiation (call with the clock
    /// at the initiation instant, before the eager virtual execution).
    pub fn icoll_start(&mut self, t0: f64) {
        self.events.push(DepEvent::IcollStart { t0 });
    }

    /// Record a nonblocking collective's virtual completion (call with
    /// the initiation clock and the virtual clock at completion, before
    /// rewinding the rank clock to `t0`).
    pub fn icoll_done(&mut self, t0: f64, done: f64) {
        self.events.push(DepEvent::IcollDone { t0, done });
    }

    /// Record a wait on a nonblocking collective (call with the clock at
    /// wait time, before any jump to the completion clock).
    pub fn icoll_wait(&mut self, t0: f64) {
        self.events.push(DepEvent::IcollWait { t0 });
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Hand the buffer over for merging.
    pub fn finish(self) -> Vec<DepEvent> {
        self.events
    }
}

/// The merged per-rank dependency log of one run — the event DAG.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DepLog {
    ranks: Vec<Vec<DepEvent>>,
}

impl DepLog {
    /// An empty log (untraced run).
    pub fn new() -> Self {
        DepLog::default()
    }

    /// Merge per-rank buffers, indexed by rank.
    pub fn from_ranks(ranks: Vec<Vec<DepEvent>>) -> Self {
        DepLog { ranks }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// One rank's events, in that rank's chronological order.
    pub fn rank(&self, r: usize) -> &[DepEvent] {
        &self.ranks[r]
    }

    /// Whether the log holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.ranks.iter().all(Vec::is_empty)
    }

    /// Total event count across ranks.
    pub fn len(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }
}

/// Result of replaying the DAG: per-event `(start, end)` clocks parallel
/// to each rank's event vec, the per-rank final clocks, and the makespan.
#[derive(Clone, Debug)]
pub struct Replayed {
    /// `(start_clock, end_clock)` per event, parallel to the log.
    pub clocks: Vec<Vec<(f64, f64)>>,
    /// Final clock per rank.
    pub final_clock: Vec<f64>,
    /// Max final clock.
    pub makespan: f64,
    /// First rank whose final clock equals the makespan.
    pub max_rank: usize,
}

/// Which weights a replay applies to the DAG edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WhatIf {
    /// The recorded weights, with a bit-for-bit cross-check of every
    /// recorded clock against the replayed one: the replay *is* the run.
    Identity,
    /// Zero-latency network: wire time, in-flight penalties and send
    /// overheads are all zero; cross-rank dependencies still bind
    /// (a receive cannot complete before its send departs).
    ZeroNetwork,
    /// Infinitely large kernel cache: every compute charge is replaced by
    /// its recorded all-hit alternative (`alt_secs`).
    InfiniteCache,
}

/// Replay the DAG under `mode`, resolving cross-rank dependencies with a
/// worklist (a receive blocks until its matched send has been replayed).
///
/// # Errors
///
/// [`WhatIf::Identity`] errors if any replayed clock differs bitwise from
/// the recorded one, or if a receive has no matching send — either means
/// the log is not a faithful transcript of the run.
pub fn replay(log: &DepLog, mode: WhatIf) -> Result<Replayed, String> {
    let p = log.n_ranks();
    let verify = mode == WhatIf::Identity;
    let mut idx = vec![0usize; p];
    let mut clock = vec![0.0f64; p];
    let mut clocks: Vec<Vec<(f64, f64)>> = (0..p)
        .map(|r| Vec::with_capacity(log.rank(r).len()))
        .collect();
    let mut departs: BTreeMap<(u32, u32, u64), f64> = BTreeMap::new();
    // Virtual-window state for nonblocking collectives: the stashed main
    // clock while a rank is inside a window, and the FIFO queue of
    // replayed completion times its waits consume.
    let mut vstash: Vec<Option<f64>> = vec![None; p];
    let mut vdones: Vec<VecDeque<f64>> = (0..p).map(|_| VecDeque::new()).collect();
    loop {
        let mut progressed = false;
        for r in 0..p {
            while idx[r] < log.rank(r).len() {
                let ev = &log.rank(r)[idx[r]];
                if verify {
                    if let DepEvent::Compute { t0, .. }
                    | DepEvent::Send { t0, .. }
                    | DepEvent::Recv { t0, .. }
                    | DepEvent::IcollStart { t0 }
                    | DepEvent::IcollWait { t0 } = ev
                    {
                        if clock[r].to_bits() != t0.to_bits() {
                            return Err(format!(
                                "identity replay diverged on rank {r} event {}: replayed clock \
                                 {} vs recorded {t0} — the dep log is not a faithful transcript",
                                idx[r], clock[r]
                            ));
                        }
                    }
                }
                let start = clock[r];
                match *ev {
                    DepEvent::Coll { .. } => {}
                    DepEvent::IcollStart { .. } => {
                        if vstash[r].is_some() {
                            return Err(format!(
                                "rank {r} event {}: nested nonblocking collective window",
                                idx[r]
                            ));
                        }
                        // The clock becomes the window's virtual clock;
                        // the matching IcollDone restores this value.
                        vstash[r] = Some(clock[r]);
                    }
                    DepEvent::IcollDone { done, .. } => {
                        if verify && clock[r].to_bits() != done.to_bits() {
                            return Err(format!(
                                "identity replay diverged on rank {r} event {}: virtual \
                                 completion {} vs recorded {done} — the dep log is not a \
                                 faithful transcript",
                                idx[r], clock[r]
                            ));
                        }
                        let Some(main) = vstash[r].take() else {
                            return Err(format!(
                                "rank {r} event {}: collective window closed without opening",
                                idx[r]
                            ));
                        };
                        vdones[r].push_back(clock[r]);
                        clock[r] = main;
                    }
                    DepEvent::IcollWait { .. } => {
                        let Some(d) = vdones[r].pop_front() else {
                            return Err(format!(
                                "rank {r} event {}: wait without an initiated nonblocking \
                                 collective",
                                idx[r]
                            ));
                        };
                        if d > clock[r] {
                            clock[r] = d;
                        }
                    }
                    DepEvent::Compute { secs, alt_secs, .. } => {
                        let charge = if mode == WhatIf::InfiniteCache {
                            alt_secs
                        } else {
                            secs
                        };
                        clock[r] += charge;
                    }
                    DepEvent::Send {
                        overhead,
                        dst,
                        link_seq,
                        ..
                    } => {
                        if mode != WhatIf::ZeroNetwork {
                            clock[r] += overhead;
                        }
                        departs.insert((r as u32, dst, link_seq), clock[r]);
                    }
                    DepEvent::Recv {
                        src,
                        link_seq,
                        depart,
                        wire,
                        penalty,
                        ..
                    } => {
                        let key = (src, r as u32, link_seq);
                        let Some(&d) = departs.get(&key) else {
                            // Blocked on a sender not replayed yet; move on
                            // to other ranks and come back.
                            break;
                        };
                        if verify && d.to_bits() != depart.to_bits() {
                            return Err(format!(
                                "identity replay diverged on rank {r} event {}: message from \
                                 rank {src} (link_seq {link_seq}) departed at {d} in replay vs \
                                 {depart} recorded",
                                idx[r]
                            ));
                        }
                        // Same association order as the simulator:
                        // (depart + wire) + penalty.
                        let arrive = if mode == WhatIf::ZeroNetwork {
                            d
                        } else {
                            (d + wire) + penalty
                        };
                        if arrive > clock[r] {
                            clock[r] = arrive;
                        }
                    }
                }
                clocks[r].push((start, clock[r]));
                idx[r] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for r in 0..p {
        if idx[r] < log.rank(r).len() {
            return Err(format!(
                "replay stuck on rank {r} event {}: receive has no matching send in the log",
                idx[r]
            ));
        }
    }
    let mut makespan = 0.0f64;
    let mut max_rank = 0usize;
    for (r, &c) in clock.iter().enumerate() {
        if c > makespan {
            makespan = c;
            max_rank = r;
        }
    }
    Ok(Replayed {
        clocks,
        final_clock: clock,
        makespan,
        max_rank,
    })
}

/// What kind of edge a critical-path hop rides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopKind {
    /// A local compute charge.
    Compute,
    /// The sender-side CPU overhead of a message on the path.
    SendOverhead,
    /// A wire transfer (the binding arrival of a clamped receive); spans
    /// `[depart, arrive]` and jumps from the receiver to the sender.
    Transfer,
}

impl HopKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            HopKind::Compute => "compute",
            HopKind::SendOverhead => "send_overhead",
            HopKind::Transfer => "transfer",
        }
    }
}

/// One hop of the critical path: a `[t0, t1]` edge on `rank`.
///
/// Consecutive hops are bitwise contiguous (`hops[k].t1` ==
/// `hops[k+1].t0`, bit-for-bit), the first hop starts at exactly `0.0`
/// and the last ends at exactly the makespan — so the chain telescopes to
/// the makespan with no rounding.
#[derive(Clone, Debug, PartialEq)]
pub struct Hop {
    /// Rank the edge is charged on (for transfers: the receiving rank).
    pub rank: u32,
    /// Edge kind.
    pub kind: HopKind,
    /// Operation label: the compute class, the enclosing collective's
    /// name, or `"p2p"` for user point-to-point traffic.
    pub op: String,
    /// Message tag for transfer hops (`None` for local hops or when
    /// merged hops had differing tags).
    pub tag: Option<u64>,
    /// Edge start, simulated seconds.
    pub t0: f64,
    /// Edge end, simulated seconds.
    pub t1: f64,
    /// How many primitive edges were merged into this hop.
    pub count: u32,
}

/// Per-op aggregate over the critical path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpTotal {
    /// Merged hops with this `(kind, op)` label.
    pub hops: u32,
    /// Primitive edges merged into them.
    pub edges: u32,
    /// Total seconds on the path (summed durations; reporting aid, not
    /// the bit-exact telescoped total).
    pub secs: f64,
}

/// The exact critical path through the event DAG.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// The full compressed chain, in time order.
    pub hops: Vec<Hop>,
    /// Start of the chain (exactly `0.0` on a non-empty log).
    pub start: f64,
    /// End of the chain — bitwise equal to the makespan.
    pub end: f64,
    /// Per-`kind/op` totals over the chain, key `"<kind>/<op>"`.
    pub by_op: BTreeMap<String, OpTotal>,
}

impl CriticalPath {
    /// `end − start`: the interval the chain covers. Because `start` is
    /// exactly `0.0`, this equals the makespan bit-for-bit.
    pub fn total(&self) -> f64 {
        self.end - self.start
    }
}

/// Label every event with its enclosing collective's name, per rank.
///
/// Collectives record their interval at *exit*, after the sends/receives
/// they contain; since collectives do not nest, every earlier event whose
/// start clock is at or after the collective's entry belongs to it.
pub(crate) fn coll_labels(log: &DepLog) -> Vec<Vec<Option<&'static str>>> {
    let mut labels: Vec<Vec<Option<&'static str>>> = (0..log.n_ranks())
        .map(|r| vec![None; log.rank(r).len()])
        .collect();
    for r in 0..log.n_ranks() {
        let events = log.rank(r);
        for j in 0..events.len() {
            if let DepEvent::Coll { name, t0, .. } = events[j] {
                for k in (0..j).rev() {
                    if labels[r][k].is_some() || events[k].t0() < t0 {
                        break;
                    }
                    labels[r][k] = Some(name);
                }
            }
        }
    }
    labels
}

/// Walk the identity-replayed DAG backward from the makespan and extract
/// the exact critical path.
///
/// At every point the binding constraint is unambiguous: a clamped
/// receive's clock came from the message arrival (jump to the sender at
/// departure time; the receiver's wait before the departure is idle and
/// *not* on the path), every other clock movement is local. Events that
/// did not move the clock contribute no hop. Consecutive hops with the
/// same `(rank, kind, op)` are merged.
pub fn critical_path(log: &DepLog, replayed: &Replayed) -> CriticalPath {
    let p = log.n_ranks();
    if p == 0 {
        return CriticalPath {
            start: 0.0,
            end: replayed.makespan,
            ..CriticalPath::default()
        };
    }
    // (src, dst, link_seq) -> sender event index.
    let mut send_index: BTreeMap<(u32, u32, u64), usize> = BTreeMap::new();
    for r in 0..p {
        for (i, ev) in log.rank(r).iter().enumerate() {
            if let DepEvent::Send { dst, link_seq, .. } = *ev {
                send_index.insert((r as u32, dst, link_seq), i);
            }
        }
    }
    // Virtual-window maps per rank: each IcollDone's matching IcollStart
    // index (for skipping a whole window the linear walk passes), and
    // each IcollWait's matching IcollDone index (FIFO, for entering the
    // window whose completion bound the wait).
    let mut window_start: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); p];
    let mut wait_done: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); p];
    for r in 0..p {
        let mut open: Option<usize> = None;
        let mut done_order: Vec<usize> = Vec::new();
        let mut waits = 0usize;
        for (i, ev) in log.rank(r).iter().enumerate() {
            match ev {
                DepEvent::IcollStart { .. } => open = Some(i),
                DepEvent::IcollDone { .. } => {
                    // Comm writes Start strictly before Done on a rank's
                    // own log, so an unopened window cannot occur here
                    // (untrusted transcripts are validated by `replay`).
                    let Some(s) = open.take() else {
                        unreachable!("IcollDone without an open window")
                    };
                    window_start[r].insert(i, s);
                    done_order.push(i);
                }
                DepEvent::IcollWait { .. } => {
                    wait_done[r].insert(i, done_order[waits]);
                    waits += 1;
                }
                _ => {}
            }
        }
    }
    let labels = coll_labels(log);

    let mut rev: Vec<Hop> = Vec::new();
    let push = |rev: &mut Vec<Hop>, hop: Hop| {
        // Merging happens on the time-ordered chain; in backward order the
        // previous pushed hop is the *later* one.
        if let Some(prev) = rev.last_mut() {
            if prev.rank == hop.rank && prev.kind == hop.kind && prev.op == hop.op {
                prev.t0 = hop.t0;
                prev.count += hop.count;
                if prev.tag != hop.tag {
                    prev.tag = None;
                }
                return;
            }
        }
        rev.push(hop);
    };

    let mut r = replayed.max_rank;
    let mut i = log.rank(r).len();
    'walk: loop {
        if i == 0 {
            break 'walk;
        }
        i -= 1;
        let ev = &log.rank(r)[i];
        let (s, e) = replayed.clocks[r][i];
        match *ev {
            DepEvent::Coll { .. } | DepEvent::IcollStart { .. } => {}
            DepEvent::IcollDone { .. } => {
                // Reached linearly, so the matching wait did not bind (a
                // binding wait jumps *past* this marker into the window):
                // the whole virtual window is off the path. Skip to the
                // initiation marker; the next step visits the event just
                // before it, whose end clock is the initiation instant.
                i = window_start[r][&i];
            }
            DepEvent::IcollWait { .. } => {
                if e > s {
                    // The collective's completion is the binding
                    // constraint. Its virtual window telescopes from the
                    // initiation instant (== the pre-initiation chain's
                    // end) to the completion clock `e`, so the path
                    // continues inside the window: jump past the
                    // IcollDone marker and walk the inner events.
                    i = wait_done[r][&i];
                    continue 'walk;
                }
            }
            DepEvent::Compute { class, .. } => {
                if e > s {
                    push(
                        &mut rev,
                        Hop {
                            rank: r as u32,
                            kind: HopKind::Compute,
                            op: class.to_string(),
                            tag: None,
                            t0: s,
                            t1: e,
                            count: 1,
                        },
                    );
                }
            }
            DepEvent::Send { tag, .. } => {
                if e > s {
                    let op = labels[r][i].unwrap_or("p2p").to_string();
                    push(
                        &mut rev,
                        Hop {
                            rank: r as u32,
                            kind: HopKind::SendOverhead,
                            op,
                            tag: Some(tag),
                            t0: s,
                            t1: e,
                            count: 1,
                        },
                    );
                }
            }
            DepEvent::Recv {
                src,
                tag,
                link_seq,
                depart,
                ..
            } => {
                if e > s {
                    // The clamp is the binding constraint: the transfer
                    // edge spans [depart, arrive] and the path continues
                    // on the sender. The receiver-side wait before the
                    // departure is idle, never on the path.
                    let op = labels[r][i].unwrap_or("p2p").to_string();
                    push(
                        &mut rev,
                        Hop {
                            rank: r as u32,
                            kind: HopKind::Transfer,
                            op,
                            tag: Some(tag),
                            t0: depart,
                            t1: e,
                            count: 1,
                        },
                    );
                    let si = send_index[&(src, r as u32, link_seq)];
                    r = src as usize;
                    i = si + 1; // next loop iteration visits the send itself
                    continue 'walk;
                }
            }
        }
    }
    rev.reverse();

    let mut by_op: BTreeMap<String, OpTotal> = BTreeMap::new();
    for h in &rev {
        let entry = by_op
            .entry(format!("{}/{}", h.kind.name(), h.op))
            .or_default();
        entry.hops += 1;
        entry.edges += h.count;
        entry.secs += h.t1 - h.t0;
    }
    let (start, end) = match (rev.first(), rev.last()) {
        (Some(f), Some(l)) => (f.t0, l.t1),
        _ => (0.0, replayed.makespan),
    };
    CriticalPath {
        hops: rev,
        start,
        end,
        by_op,
    }
}

/// What-if projections of the makespan under zeroed edge weights.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Projections {
    /// Makespan with wire time, penalties and send overheads all zero
    /// (dependencies still bind).
    pub zero_network: f64,
    /// Makespan with every receive paying its transfer time but never
    /// idling on a late peer: each rank replayed locally with
    /// `clock += wire + penalty` per receive — the perfect-load-balance
    /// bound.
    pub perfect_balance: f64,
    /// Makespan with every kernel-cache lookup a hit (compute charges
    /// replaced by their recorded all-hit alternatives).
    pub infinite_cache: f64,
}

/// Compute all three projections by re-walking the DAG.
///
/// # Errors
///
/// Propagates replay failures (an unmatched receive in the log).
pub fn project(log: &DepLog) -> Result<Projections, String> {
    let zero_network = replay(log, WhatIf::ZeroNetwork)?.makespan;
    let infinite_cache = replay(log, WhatIf::InfiniteCache)?.makespan;
    // Perfect balance is a per-rank local walk: senders are never late, so
    // no cross-rank resolution is needed.
    let mut perfect_balance = 0.0f64;
    for r in 0..log.n_ranks() {
        let mut clock = 0.0f64;
        for ev in log.rank(r) {
            match *ev {
                // Nonblocking-collective markers add nothing locally; the
                // window's inner sends/receives are counted like blocking
                // ones — a safe (slightly pessimistic) balance bound.
                DepEvent::Coll { .. }
                | DepEvent::IcollStart { .. }
                | DepEvent::IcollDone { .. }
                | DepEvent::IcollWait { .. } => {}
                DepEvent::Compute { secs, .. } => clock += secs,
                DepEvent::Send { overhead, .. } => clock += overhead,
                DepEvent::Recv { wire, penalty, .. } => clock += wire + penalty,
            }
        }
        perfect_balance = perfect_balance.max(clock);
    }
    Ok(Projections {
        zero_network,
        perfect_balance,
        infinite_cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a tiny 2-rank log by hand, mimicking the simulator's
    /// arithmetic: rank 0 computes 1.0 then sends (overhead 0.25); rank 1
    /// computes 0.5 then receives (wire 0.5, no penalty).
    fn tiny_log() -> DepLog {
        let mut r0 = DepRecorder::new();
        r0.compute(0.0, 1.0, 1.0, "compute");
        r0.send(1.0, 0.25, 1, 7, 0);
        let mut r1 = DepRecorder::new();
        r1.compute(0.0, 0.5, 0.5, "compute");
        r1.recv(0.5, 0, 7, 0, 1.25, 0.5, 0.0);
        DepLog::from_ranks(vec![r0.finish(), r1.finish()])
    }

    #[test]
    fn identity_replay_reproduces_clocks() {
        let log = tiny_log();
        let rep = replay(&log, WhatIf::Identity).unwrap();
        assert_eq!(rep.final_clock, vec![1.25, 1.75]);
        assert_eq!(rep.makespan, 1.75);
        assert_eq!(rep.max_rank, 1);
    }

    #[test]
    fn identity_replay_rejects_tampered_logs() {
        let mut r0 = DepRecorder::new();
        r0.compute(0.5, 1.0, 1.0, "compute"); // wrong t0: clock starts at 0
        let log = DepLog::from_ranks(vec![r0.finish()]);
        let err = replay(&log, WhatIf::Identity).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn replay_reports_unmatched_receives() {
        let mut r0 = DepRecorder::new();
        r0.recv(0.0, 1, 7, 0, 1.0, 0.5, 0.0);
        let log = DepLog::from_ranks(vec![r0.finish(), Vec::new()]);
        let err = replay(&log, WhatIf::Identity).unwrap_err();
        assert!(err.contains("no matching send"), "{err}");
    }

    #[test]
    fn critical_path_telescopes_to_the_makespan() {
        let log = tiny_log();
        let rep = replay(&log, WhatIf::Identity).unwrap();
        let cp = critical_path(&log, &rep);
        // chain: rank0 compute [0,1] → send_overhead [1,1.25] →
        // transfer [1.25,1.75] (receiver rank 1)
        assert_eq!(cp.hops.len(), 3);
        assert_eq!(cp.hops[0].kind, HopKind::Compute);
        assert_eq!(cp.hops[0].rank, 0);
        assert_eq!(cp.hops[1].kind, HopKind::SendOverhead);
        assert_eq!(cp.hops[2].kind, HopKind::Transfer);
        assert_eq!(cp.hops[2].rank, 1);
        assert_eq!(cp.hops[2].tag, Some(7));
        for w in cp.hops.windows(2) {
            assert_eq!(w[0].t1.to_bits(), w[1].t0.to_bits(), "contiguous");
        }
        assert_eq!(cp.start.to_bits(), 0.0f64.to_bits());
        assert_eq!(cp.end.to_bits(), rep.makespan.to_bits());
        assert_eq!(cp.total().to_bits(), rep.makespan.to_bits());
    }

    #[test]
    fn idle_is_never_on_the_path() {
        // rank 1 idles 0.75s waiting for rank 0's departure; the path
        // jumps to rank 0 and the idle stretch appears on no hop.
        let log = tiny_log();
        let rep = replay(&log, WhatIf::Identity).unwrap();
        let cp = critical_path(&log, &rep);
        let on_rank1: Vec<_> = cp.hops.iter().filter(|h| h.rank == 1).collect();
        assert_eq!(on_rank1.len(), 1);
        assert_eq!(on_rank1[0].kind, HopKind::Transfer);
        assert_eq!(on_rank1[0].t0, 1.25); // starts at the departure
    }

    #[test]
    fn zero_network_projection_removes_wire_and_overhead() {
        let log = tiny_log();
        let proj = project(&log).unwrap();
        // rank 0: compute 1.0, zero overhead; rank 1: compute 0.5 then
        // recv arriving at rank 0's depart clock (1.0) — already past 0.5,
        // so clamps to 1.0.
        assert_eq!(proj.zero_network, 1.0);
        // perfect balance: rank 1 pays 0.5 compute + 0.5 wire = 1.0;
        // rank 0 pays 1.25.
        assert_eq!(proj.perfect_balance, 1.25);
        assert_eq!(proj.infinite_cache, 1.75); // alt == secs here
    }

    #[test]
    fn infinite_cache_uses_alt_charges() {
        let mut r0 = DepRecorder::new();
        r0.compute(0.0, 4.0, 1.0, "fused_sweep");
        let log = DepLog::from_ranks(vec![r0.finish()]);
        let proj = project(&log).unwrap();
        assert_eq!(proj.infinite_cache, 1.0);
        assert_eq!(proj.zero_network, 4.0);
    }

    #[test]
    fn collective_labels_attach_to_inner_events() {
        let mut r0 = DepRecorder::new();
        r0.compute(0.0, 1.0, 1.0, "compute");
        r0.send(1.0, 0.0, 1, 1 << 63, 0);
        r0.coll("allreduce", 1.0, 1.0);
        let mut r1 = DepRecorder::new();
        r1.recv(0.0, 0, 1 << 63, 0, 1.0, 2.0, 0.0);
        r1.coll("allreduce", 0.0, 3.0);
        let log = DepLog::from_ranks(vec![r0.finish(), r1.finish()]);
        let rep = replay(&log, WhatIf::Identity).unwrap();
        let cp = critical_path(&log, &rep);
        let transfer = cp
            .hops
            .iter()
            .find(|h| h.kind == HopKind::Transfer)
            .expect("transfer hop");
        assert_eq!(transfer.op, "allreduce");
        assert!(
            cp.by_op.contains_key("transfer/allreduce"),
            "{:?}",
            cp.by_op
        );
    }

    #[test]
    fn consecutive_hops_merge() {
        let mut r0 = DepRecorder::new();
        r0.compute(0.0, 1.0, 1.0, "sweep");
        r0.compute(1.0, 1.0, 1.0, "sweep");
        r0.compute(2.0, 1.0, 1.0, "other");
        let log = DepLog::from_ranks(vec![r0.finish()]);
        let rep = replay(&log, WhatIf::Identity).unwrap();
        let cp = critical_path(&log, &rep);
        assert_eq!(cp.hops.len(), 2);
        assert_eq!(cp.hops[0].count, 2);
        assert_eq!((cp.hops[0].t0, cp.hops[0].t1), (0.0, 2.0));
    }

    /// Two ranks exchange one message inside a nonblocking collective's
    /// virtual window (send overhead 0.25, wire 0.5 → virtual completion
    /// 0.75), then each computes `cover` seconds before waiting.
    fn overlap_log(cover: f64) -> DepLog {
        let mut ranks = Vec::new();
        for r in 0..2u32 {
            let peer = 1 - r;
            let mut rec = DepRecorder::new();
            rec.icoll_start(0.0);
            rec.send(0.0, 0.25, peer, 9, 0);
            rec.recv(0.25, peer, 9, 0, 0.25, 0.5, 0.0);
            rec.coll("iallreduce", 0.0, 0.75);
            rec.icoll_done(0.0, 0.75);
            rec.compute(0.0, cover, cover, "compute");
            rec.icoll_wait(cover);
            ranks.push(rec.finish());
        }
        DepLog::from_ranks(ranks)
    }

    #[test]
    fn virtual_windows_replay_bit_exactly() {
        // Partially hidden: 0.25s of compute against a 0.75s collective.
        let log = overlap_log(0.25);
        let rep = replay(&log, WhatIf::Identity).unwrap();
        assert_eq!(rep.makespan, 0.75);
        assert_eq!(rep.final_clock, vec![0.75, 0.75]);
        // Fully hidden: the wait is a no-op and compute sets the clock.
        let rep = replay(&overlap_log(2.0), WhatIf::Identity).unwrap();
        assert_eq!(rep.makespan, 2.0);
    }

    #[test]
    fn clamped_wait_routes_the_path_through_the_window() {
        let log = overlap_log(0.25);
        let rep = replay(&log, WhatIf::Identity).unwrap();
        let cp = critical_path(&log, &rep);
        assert_eq!(cp.start.to_bits(), 0.0f64.to_bits());
        assert_eq!(cp.end.to_bits(), rep.makespan.to_bits());
        for w in cp.hops.windows(2) {
            assert_eq!(w[0].t1.to_bits(), w[1].t0.to_bits(), "contiguous");
        }
        // the binding chain is the collective itself: the partner's send
        // overhead then the wire transfer, both labeled by the window
        assert!(
            cp.hops.iter().all(|h| h.op == "iallreduce"),
            "{:?}",
            cp.hops
        );
        assert!(cp.hops.iter().any(|h| h.kind == HopKind::Transfer));
    }

    #[test]
    fn covered_windows_stay_off_the_path() {
        let log = overlap_log(2.0);
        let rep = replay(&log, WhatIf::Identity).unwrap();
        let cp = critical_path(&log, &rep);
        assert_eq!(cp.hops.len(), 1);
        assert_eq!(cp.hops[0].kind, HopKind::Compute);
        assert_eq!((cp.hops[0].t0, cp.hops[0].t1), (0.0, 2.0));
    }

    #[test]
    fn replay_rejects_malformed_windows() {
        let mut r0 = DepRecorder::new();
        r0.icoll_wait(0.0);
        let log = DepLog::from_ranks(vec![r0.finish()]);
        let err = replay(&log, WhatIf::Identity).unwrap_err();
        assert!(err.contains("without an initiated"), "{err}");

        let mut r0 = DepRecorder::new();
        r0.icoll_start(0.0);
        r0.icoll_start(0.0);
        let log = DepLog::from_ranks(vec![r0.finish()]);
        let err = replay(&log, WhatIf::Identity).unwrap_err();
        assert!(err.contains("nested"), "{err}");
    }

    #[test]
    fn identity_replay_cross_checks_the_virtual_completion() {
        let mut rec = DepRecorder::new();
        rec.icoll_start(0.0);
        rec.compute(0.0, 0.5, 0.5, "compute"); // virtual-clock move
        rec.icoll_done(0.0, 0.75); // lies: virtual clock is 0.5
        rec.icoll_wait(0.0);
        let log = DepLog::from_ranks(vec![rec.finish()]);
        let err = replay(&log, WhatIf::Identity).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn empty_log_yields_empty_path() {
        let log = DepLog::new();
        let rep = replay(&log, WhatIf::Identity).unwrap();
        assert_eq!(rep.makespan, 0.0);
        let cp = critical_path(&log, &rep);
        assert!(cp.hops.is_empty());
        assert_eq!(cp.total(), 0.0);
    }
}
