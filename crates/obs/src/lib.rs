//! `shrinksvm-obs`: dependency-free telemetry for the shrinksvm workspace.
//!
//! Five pieces, all keyed on *simulated* time so identical seeds produce
//! byte-identical artifacts:
//!
//! - [`timeline`] — a per-rank span/event timeline ([`TrackRecorder`],
//!   [`Timeline`]) exported as Chrome trace-event JSON (Perfetto /
//!   `chrome://tracing` loadable) or a plain-text per-rank listing.
//! - [`critpath`] — the cross-rank dependency log ([`DepLog`]) recorded
//!   alongside the timeline, its bit-exact identity replay, the exact
//!   critical-path walk and what-if projections.
//! - [`attrib`] — five-bucket makespan attribution and the [`PerfDoctor`]
//!   text + JSON report built on the replay.
//! - [`metrics`] — a [`MetricsRegistry`] of counters, gauges, fixed-bucket
//!   histograms and epoch-keyed sample series with a deterministic text
//!   snapshot.
//! - [`report`] — [`BenchReport`], the machine-readable `BENCH_<name>.json`
//!   summary every benchmark run emits.
//! - [`monitor`] — deterministic in-flight watch rules ([`monitor::analyze`])
//!   that turn timeline events into `cat:"health"` [`HealthEvent`]s:
//!   heartbeat gaps, straggler skew, collective-wait stalls, retransmit
//!   storms and recovery churn.
//! - [`flight`] — the crash [`FlightRecorder`]: a bounded per-rank ring of
//!   the last N events that survives rank panics and serializes as
//!   `FLIGHT_<name>.json` (schema [`FLIGHT_SCHEMA`]).
//! - [`profile`] — hierarchical self/total-time [`Profile`]s (phase → op
//!   → charge class) reconciled against the attribution buckets, exported
//!   as collapsed-stack text, a self-contained flame-graph SVG and JSON
//!   (`PROFILE_<name>.*`, schema [`PROFILE_SCHEMA`]).
//! - [`perfdiff`] — differential attribution ([`PerfDiff`]): decompose
//!   the makespan delta between two PerfDoctor reports into per-bucket
//!   and per-op gains/losses plus what-if shifts.
//! - [`perfhist`] — the cross-run perf-history ledger ([`HistoryRow`]):
//!   append-only JSONL makespan trajectory with a text sparkline and a
//!   regression gate.
//!
//! [`json`] holds the shared hand-rolled JSON writer helpers, a strict
//! well-formedness checker used by tests and CI to validate emitted
//! documents, and a small parser ([`json::parse`]) used by the
//! `bench-diff` regression gate — all without external dependencies.

pub mod attrib;
pub mod critpath;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod perfdiff;
pub mod perfhist;
pub mod profile;
pub mod report;
pub mod timeline;

pub use attrib::{Attribution, PerfDoctor, RankBuckets, PERF_SCHEMA};
pub use critpath::{CriticalPath, DepEvent, DepLog, DepRecorder, Hop, HopKind, Projections};
pub use flight::{
    FlightRecorder, FlightSnapshot, RankFlight, DEFAULT_FLIGHT_CAPACITY, FLIGHT_SCHEMA,
};
pub use metrics::{Histogram, MetricsRegistry};
pub use monitor::{HealthConfig, HealthEvent, HealthRule};
pub use perfdiff::{OpDelta, PerfDiff, PERFDIFF_SCHEMA};
pub use perfhist::{
    gate_against_tail, parse_ledger, render_history, sparkline, HistoryRow, PERF_HISTORY_SCHEMA,
};
pub use profile::{xml_check, Profile, ProfileNode, PROFILE_SCHEMA};
pub use report::{BenchReport, BENCH_SCHEMA_VERSION};
pub use timeline::{Event, Timeline, TrackRecorder};
