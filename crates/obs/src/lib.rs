//! `shrinksvm-obs`: dependency-free telemetry for the shrinksvm workspace.
//!
//! Three pieces, all keyed on *simulated* time so identical seeds produce
//! byte-identical artifacts:
//!
//! - [`timeline`] — a per-rank span/event timeline ([`TrackRecorder`],
//!   [`Timeline`]) exported as Chrome trace-event JSON (Perfetto /
//!   `chrome://tracing` loadable) or a plain-text per-rank listing.
//! - [`metrics`] — a [`MetricsRegistry`] of counters, gauges, fixed-bucket
//!   histograms and epoch-keyed sample series with a deterministic text
//!   snapshot.
//! - [`report`] — [`BenchReport`], the machine-readable `BENCH_<name>.json`
//!   summary every benchmark run emits.
//!
//! [`json`] holds the shared hand-rolled JSON writer helpers plus a strict
//! well-formedness checker used by tests and CI to validate emitted
//! documents without external dependencies.

pub mod json;
pub mod metrics;
pub mod report;
pub mod timeline;

pub use metrics::{Histogram, MetricsRegistry};
pub use report::{BenchReport, BENCH_SCHEMA_VERSION};
pub use timeline::{Event, Timeline, TrackRecorder};
