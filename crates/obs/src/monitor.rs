//! The in-flight health monitor: deterministic watch rules over timeline
//! events.
//!
//! [`analyze`] consumes a flat slice of [`Event`]s — a merged timeline or
//! a flight-recorder window — and evaluates five simulated-time watch
//! rules ([`HealthRule`]): per-rank heartbeat gaps, straggler skew
//! (slowest frontier vs. the median), collective-wait stalls, retransmit
//! storms, and recovery-ladder churn. Every firing becomes a
//! [`HealthEvent`], renderable as a `cat:"health"` timeline instant and
//! serializable into flight recordings.
//!
//! Rules are pure functions of the event slice and a [`HealthConfig`]:
//! no wall-clock reads, no unordered iteration, so identical seeds
//! produce identical health verdicts. Thresholds default conservative —
//! a fault-free benchmark run must emit **zero** health events (the
//! bench-diff byte-identity gate depends on it); the rules are tuned to
//! fire on injected-fault pathologies (backoff-inflated receive waits,
//! storming retransmissions, ladder thrash), not on the ordinary skew of
//! a balanced run.

use crate::json::{escape_into, write_f64};
use crate::timeline::Event;

/// Which watch rule fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthRule {
    /// A rank recorded nothing for a large fraction of the run.
    HeartbeatGap,
    /// The slowest rank's event frontier is far beyond the median rank's.
    Straggler,
    /// One collective or p2p wait consumed a large fraction of the run.
    CollectiveStall,
    /// A rank absorbed many retransmissions.
    RetransmitStorm,
    /// The recovery ladder restarted many times in one training run.
    RecoveryChurn,
}

impl HealthRule {
    /// Stable machine-readable key (used in JSON and metric names).
    pub fn key(self) -> &'static str {
        match self {
            HealthRule::HeartbeatGap => "heartbeat_gap",
            HealthRule::Straggler => "straggler",
            HealthRule::CollectiveStall => "collective_stall",
            HealthRule::RetransmitStorm => "retransmit_storm",
            HealthRule::RecoveryChurn => "recovery_churn",
        }
    }
}

/// One watch-rule firing.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthEvent {
    /// The rule that fired.
    pub rule: HealthRule,
    /// The rank the evidence sits on.
    pub track: u32,
    /// Simulated time of the evidence.
    pub t: f64,
    /// Human-readable specifics (durations, counts, span names).
    pub detail: String,
}

impl HealthEvent {
    /// Render as a `cat:"health"` timeline instant.
    pub fn to_instant(&self) -> Event {
        Event::Instant {
            track: self.track,
            name: format!("{}: {}", self.rule.key(), self.detail),
            cat: "health".to_string(),
            t: self.t,
        }
    }

    /// Append as a JSON object (fixed key order).
    pub fn json_into(&self, out: &mut String) {
        out.push_str("{\"rule\":");
        escape_into(out, self.rule.key());
        let _ = {
            use std::fmt::Write as _;
            write!(out, ",\"track\":{}", self.track)
        };
        out.push_str(",\"t\":");
        write_f64(out, self.t);
        out.push_str(",\"detail\":");
        escape_into(out, &self.detail);
        out.push('}');
    }
}

/// Thresholds for the watch rules. Fractions are of the observed
/// makespan; floors are absolute simulated seconds that keep tiny runs
/// from tripping fraction-only rules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthConfig {
    /// Heartbeat rule: a silent stretch longer than this fraction of the
    /// makespan fires.
    pub heartbeat_gap_frac: f64,
    /// Heartbeat rule: absolute minimum gap, simulated seconds.
    pub heartbeat_floor: f64,
    /// Straggler rule: slowest frontier must exceed `factor × median`.
    pub straggler_factor: f64,
    /// Straggler rule: absolute minimum skew, simulated seconds.
    pub straggler_floor: f64,
    /// Stall rule: one wait span longer than this fraction of the
    /// makespan fires.
    pub stall_frac: f64,
    /// Stall rule: absolute minimum duration, simulated seconds.
    pub stall_floor: f64,
    /// Storm rule: retransmit instants on one rank to fire at.
    pub retransmit_storm: u64,
    /// Churn rule: recovery restarts across the run to fire at.
    pub recovery_churn: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            heartbeat_gap_frac: 0.6,
            heartbeat_floor: 0.01,
            straggler_factor: 2.0,
            straggler_floor: 0.01,
            stall_frac: 0.35,
            stall_floor: 0.005,
            retransmit_storm: 3,
            recovery_churn: 3,
        }
    }
}

/// End time of an event (spans end at `t1`, points at their instant).
fn end(e: &Event) -> f64 {
    match *e {
        Event::Span { t1, .. } => t1,
        Event::Instant { t, .. } | Event::Counter { t, .. } => t,
    }
}

/// Whether a rule should look at this event at all: previously emitted
/// health instants are excluded so re-analyzing an annotated timeline is
/// idempotent.
fn watchable(e: &Event) -> bool {
    !matches!(e, Event::Span { cat, .. } | Event::Instant { cat, .. } if cat == "health")
}

/// Evaluate every watch rule over `events` (any order; the rules sort
/// what they need). Returns firings ordered by (time, rank, rule key) —
/// a deterministic total order.
pub fn analyze(events: &[Event], cfg: &HealthConfig) -> Vec<HealthEvent> {
    let watched: Vec<&Event> = events.iter().filter(|e| watchable(e)).collect();
    if watched.is_empty() {
        return Vec::new();
    }
    let tracks = watched.iter().map(|e| e.track()).max().unwrap_or(0) as usize + 1;
    let makespan = watched.iter().map(|e| end(e)).fold(0.0_f64, f64::max);
    let mut out = Vec::new();

    // Heartbeat gaps: the largest silent stretch between one event's end
    // and the next event's start on the same rank.
    let gap_threshold = (cfg.heartbeat_gap_frac * makespan).max(cfg.heartbeat_floor);
    for track in 0..tracks as u32 {
        let mut bounds: Vec<(f64, f64)> = watched
            .iter()
            .filter(|e| e.track() == track)
            .map(|e| (e.start(), end(e)))
            .collect();
        if bounds.is_empty() {
            continue;
        }
        bounds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut frontier = bounds[0].1;
        for &(start, fin) in &bounds[1..] {
            let gap = start - frontier;
            if gap > gap_threshold {
                out.push(HealthEvent {
                    rule: HealthRule::HeartbeatGap,
                    track,
                    t: start,
                    detail: format!("silent for {gap:.6}s of a {makespan:.6}s run"),
                });
            }
            frontier = frontier.max(fin);
        }
    }

    // Straggler skew: per-rank span frontiers vs. the median frontier.
    let mut frontiers: Vec<(u32, f64)> = Vec::new();
    for track in 0..tracks as u32 {
        let frontier = watched
            .iter()
            .filter(|e| e.track() == track && matches!(e, Event::Span { .. }))
            .map(|e| end(e))
            .fold(f64::NEG_INFINITY, f64::max);
        if frontier.is_finite() {
            frontiers.push((track, frontier));
        }
    }
    if frontiers.len() >= 2 {
        let mut sorted: Vec<f64> = frontiers.iter().map(|&(_, f)| f).collect();
        sorted.sort_by(f64::total_cmp);
        // Lower-middle median: with two ranks the faster one is the
        // baseline, so a 2× straggler is still visible.
        let median = sorted[(sorted.len() - 1) / 2];
        for &(track, frontier) in &frontiers {
            if frontier > cfg.straggler_factor * median && frontier - median > cfg.straggler_floor {
                out.push(HealthEvent {
                    rule: HealthRule::Straggler,
                    track,
                    t: frontier,
                    detail: format!(
                        "frontier {frontier:.6}s vs median {median:.6}s ({:.1}x)",
                        frontier / median.max(f64::MIN_POSITIVE)
                    ),
                });
            }
        }
    }

    // Collective-wait stalls: one coll/p2p wait dominating the run.
    let stall_threshold = (cfg.stall_frac * makespan).max(cfg.stall_floor);
    for e in &watched {
        if let Event::Span {
            track,
            name,
            cat,
            t0,
            t1,
        } = e
        {
            if (cat == "coll" || cat == "p2p") && t1 - t0 > stall_threshold {
                out.push(HealthEvent {
                    rule: HealthRule::CollectiveStall,
                    track: *track,
                    t: *t1,
                    detail: format!("{name} waited {:.6}s of a {makespan:.6}s run", t1 - t0),
                });
            }
        }
    }

    // Retransmit storms: many retransmissions absorbed by one rank.
    for track in 0..tracks as u32 {
        let mut count = 0u64;
        let mut last = 0.0_f64;
        for e in &watched {
            if let Event::Instant {
                track: tr, name, t, ..
            } = e
            {
                if *tr == track && name == "retransmit" {
                    count += 1;
                    last = last.max(*t);
                }
            }
        }
        if count >= cfg.retransmit_storm {
            out.push(HealthEvent {
                rule: HealthRule::RetransmitStorm,
                track,
                t: last,
                detail: format!("{count} retransmission(s)"),
            });
        }
    }

    // Recovery churn: ladder restarts across the whole run.
    let mut churn = 0u64;
    let mut last: Option<(u32, f64)> = None;
    for e in &watched {
        if let Event::Instant { track, cat, t, .. } = e {
            if cat == "recovery" {
                churn += 1;
                last = Some(match last {
                    Some((lt, lts)) if lts >= *t => (lt, lts),
                    _ => (*track, *t),
                });
            }
        }
    }
    if churn >= cfg.recovery_churn {
        let (track, t) = last.unwrap_or((0, makespan));
        out.push(HealthEvent {
            rule: HealthRule::RecoveryChurn,
            track,
            t,
            detail: format!("{churn} recovery step(s) in one training run"),
        });
    }

    out.sort_by(|a, b| {
        a.t.total_cmp(&b.t)
            .then(a.track.cmp(&b.track))
            .then(a.rule.key().cmp(b.rule.key()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: u32, name: &str, cat: &str, t0: f64, t1: f64) -> Event {
        Event::Span {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            t0,
            t1,
        }
    }

    fn instant(track: u32, name: &str, cat: &str, t: f64) -> Event {
        Event::Instant {
            track,
            name: name.to_string(),
            cat: cat.to_string(),
            t,
        }
    }

    /// A dense, balanced two-rank run: nothing should fire.
    fn healthy() -> Vec<Event> {
        let mut ev = Vec::new();
        for track in 0..2 {
            for i in 0..10 {
                let t = i as f64 * 0.1;
                ev.push(span(track, "compute", "compute", t, t + 0.06));
                ev.push(span(track, "allreduce", "coll", t + 0.06, t + 0.1));
            }
        }
        ev
    }

    #[test]
    fn healthy_run_emits_nothing() {
        assert_eq!(analyze(&healthy(), &HealthConfig::default()), Vec::new());
    }

    #[test]
    fn empty_slice_emits_nothing() {
        assert!(analyze(&[], &HealthConfig::default()).is_empty());
    }

    #[test]
    fn heartbeat_gap_fires_on_a_silent_stretch() {
        let mut ev = healthy();
        ev.push(span(0, "late", "compute", 4.0, 4.1));
        let health = analyze(&ev, &HealthConfig::default());
        assert!(
            health
                .iter()
                .any(|h| h.rule == HealthRule::HeartbeatGap && h.track == 0),
            "{health:?}"
        );
    }

    #[test]
    fn straggler_fires_when_one_frontier_runs_far_ahead() {
        let mut ev = healthy();
        ev.push(span(2, "compute", "compute", 0.0, 0.4));
        ev.push(span(2, "compute", "compute", 0.4, 3.0));
        let health = analyze(&ev, &HealthConfig::default());
        let straggler: Vec<_> = health
            .iter()
            .filter(|h| h.rule == HealthRule::Straggler)
            .collect();
        assert_eq!(straggler.len(), 1, "{health:?}");
        assert_eq!(straggler[0].track, 2);
    }

    #[test]
    fn stall_fires_on_one_dominant_wait() {
        let mut ev = healthy();
        ev.push(span(1, "recv_wait", "p2p", 0.0, 0.9));
        let health = analyze(&ev, &HealthConfig::default());
        assert!(
            health
                .iter()
                .any(|h| h.rule == HealthRule::CollectiveStall && h.detail.contains("recv_wait")),
            "{health:?}"
        );
    }

    #[test]
    fn retransmit_storm_counts_per_rank() {
        let mut ev = healthy();
        for i in 0..3 {
            ev.push(instant(1, "retransmit", "fault", 0.2 + 0.1 * i as f64));
        }
        // two on rank 0: below threshold
        ev.push(instant(0, "retransmit", "fault", 0.2));
        ev.push(instant(0, "retransmit", "fault", 0.3));
        let health = analyze(&ev, &HealthConfig::default());
        let storms: Vec<_> = health
            .iter()
            .filter(|h| h.rule == HealthRule::RetransmitStorm)
            .collect();
        assert_eq!(storms.len(), 1, "{health:?}");
        assert_eq!(storms[0].track, 1);
    }

    #[test]
    fn recovery_churn_counts_across_the_run() {
        let mut ev = healthy();
        for i in 0..3 {
            ev.push(instant(0, "recovery_restart", "recovery", 0.1 * i as f64));
        }
        let health = analyze(&ev, &HealthConfig::default());
        assert!(
            health.iter().any(|h| h.rule == HealthRule::RecoveryChurn),
            "{health:?}"
        );
    }

    #[test]
    fn previously_emitted_health_instants_are_ignored() {
        let mut ev = healthy();
        ev.push(instant(0, "straggler: x", "health", 5.0));
        assert!(analyze(&ev, &HealthConfig::default()).is_empty());
    }

    #[test]
    fn output_order_is_deterministic() {
        let mut ev = healthy();
        ev.push(span(1, "recv_wait", "p2p", 0.0, 0.9));
        for i in 0..3 {
            ev.push(instant(1, "retransmit", "fault", 0.2 + 0.1 * i as f64));
        }
        let a = analyze(&ev, &HealthConfig::default());
        ev.reverse();
        let b = analyze(&ev, &HealthConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn to_instant_carries_the_health_category() {
        let h = HealthEvent {
            rule: HealthRule::Straggler,
            track: 3,
            t: 1.5,
            detail: "test".into(),
        };
        match h.to_instant() {
            Event::Instant {
                track,
                name,
                cat,
                t,
            } => {
                assert_eq!((track, t), (3, 1.5));
                assert_eq!(cat, "health");
                assert!(name.starts_with("straggler:"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let h = HealthEvent {
            rule: HealthRule::CollectiveStall,
            track: 1,
            t: 0.5,
            detail: "recv_wait waited 0.4s".into(),
        };
        let mut out = String::new();
        h.json_into(&mut out);
        assert_eq!(
            out,
            "{\"rule\":\"collective_stall\",\"track\":1,\"t\":0.5,\"detail\":\"recv_wait waited 0.4s\"}"
        );
        crate::json::check(&out).unwrap();
    }
}
