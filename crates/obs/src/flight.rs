//! The crash flight recorder: a bounded, deterministic ring buffer of the
//! last N timeline events per rank.
//!
//! The tracing pipeline in `mpisim` buffers each rank's events inside the
//! rank thread and only merges them after a *successful* join — so when a
//! run dies (retry-budget exhaustion, deadlock diagnosis, liveness
//! timeout), the panicking rank's buffer unwinds with it and the timeline
//! is never built. The [`FlightRecorder`] is the black box that survives:
//! ranks mirror every event into a shared, per-rank ring at record time,
//! and the driver holds its own `Arc` clone, so the last moments of every
//! rank are still readable after the unwind.
//!
//! Rings are bounded (default [`DEFAULT_FLIGHT_CAPACITY`] events per rank)
//! and strictly per-rank: each ring is only ever written by its own rank
//! thread, so the retained window is a pure function of that rank's event
//! sequence — byte-deterministic for identical seeds regardless of OS
//! scheduling. A [`FlightSnapshot`] serializes as schema
//! [`FLIGHT_SCHEMA`] (`FLIGHT_<name>.json`) with the triggering reason and
//! any health events attached.

use crate::json::{escape_into, write_f64};
use crate::monitor::HealthEvent;
use crate::timeline::Event;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Schema tag written into every flight recording.
pub const FLIGHT_SCHEMA: &str = "shrinksvm-flight/v1";

/// Default ring capacity: events retained per rank.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// One rank's bounded event window.
#[derive(Debug, Default)]
struct FlightRing {
    events: VecDeque<Event>,
    dropped: u64,
}

/// A shared, panic-surviving recorder of the last N events per rank.
///
/// Cloneable via `Arc`; each rank writes only its own ring, so lock
/// contention is nil and the retained windows are deterministic.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    rings: Vec<Mutex<FlightRing>>,
}

impl FlightRecorder {
    /// A recorder for `ranks` ranks retaining `capacity` events each.
    /// A zero capacity is clamped to 1 (an empty black box records
    /// nothing, which defeats the point).
    pub fn new(ranks: usize, capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            rings: (0..ranks)
                .map(|_| Mutex::new(FlightRing::default()))
                .collect(),
        }
    }

    /// Events retained per rank.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rank rings.
    pub fn ranks(&self) -> usize {
        self.rings.len()
    }

    /// Mirror one event into its rank's ring (the rank is the event's
    /// track). Events on tracks beyond the ring set are ignored.
    pub fn record(&self, event: Event) {
        let Some(ring) = self.rings.get(event.track() as usize) else {
            return;
        };
        let mut ring = ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Copy out every ring's current window.
    pub fn snapshot(&self) -> FlightSnapshot {
        FlightSnapshot {
            capacity: self.capacity,
            ranks: self
                .rings
                .iter()
                .map(|ring| {
                    let ring = ring
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    RankFlight {
                        events: ring.events.iter().cloned().collect(),
                        dropped: ring.dropped,
                    }
                })
                .collect(),
        }
    }
}

/// One rank's snapshotted window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankFlight {
    /// The retained events, oldest first.
    pub events: Vec<Event>,
    /// Events that aged out of the ring before the snapshot.
    pub dropped: u64,
}

/// A point-in-time copy of every rank's ring, ready to serialize.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlightSnapshot {
    /// Ring capacity the recorder ran with.
    pub capacity: usize,
    /// Per-rank windows, indexed by rank.
    pub ranks: Vec<RankFlight>,
}

/// Append one timeline event as a JSON object.
fn event_json(out: &mut String, e: &Event) {
    match e {
        Event::Span {
            name, cat, t0, t1, ..
        } => {
            out.push_str("{\"kind\":\"span\",\"name\":");
            escape_into(out, name);
            out.push_str(",\"cat\":");
            escape_into(out, cat);
            out.push_str(",\"t0\":");
            write_f64(out, *t0);
            out.push_str(",\"t1\":");
            write_f64(out, *t1);
            out.push('}');
        }
        Event::Instant { name, cat, t, .. } => {
            out.push_str("{\"kind\":\"instant\",\"name\":");
            escape_into(out, name);
            out.push_str(",\"cat\":");
            escape_into(out, cat);
            out.push_str(",\"t\":");
            write_f64(out, *t);
            out.push('}');
        }
        Event::Counter { name, t, value, .. } => {
            out.push_str("{\"kind\":\"counter\",\"name\":");
            escape_into(out, name);
            out.push_str(",\"t\":");
            write_f64(out, *t);
            out.push_str(",\"value\":");
            write_f64(out, *value);
            out.push('}');
        }
    }
}

impl FlightSnapshot {
    /// Every retained event across all ranks, rank-major — the slice the
    /// health rules analyze post-mortem.
    pub fn all_events(&self) -> Vec<Event> {
        self.ranks
            .iter()
            .flat_map(|r| r.events.iter().cloned())
            .collect()
    }

    /// Total retained events.
    pub fn len(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }

    /// Whether no rank retained anything.
    pub fn is_empty(&self) -> bool {
        self.ranks.iter().all(|r| r.events.is_empty())
    }

    /// Serialize as a `FLIGHT_<name>.json` document (schema
    /// [`FLIGHT_SCHEMA`]): run name, the terminating `reason`, ring
    /// capacity, the post-mortem health events, then every rank's window
    /// oldest-first. Fixed key order, written with the byte-deterministic
    /// JSON helpers.
    pub fn to_json(&self, name: &str, reason: &str, health: &[HealthEvent]) -> String {
        let mut out = String::with_capacity(256 + self.len() * 96);
        out.push_str("{\"schema\":");
        escape_into(&mut out, FLIGHT_SCHEMA);
        out.push_str(",\"name\":");
        escape_into(&mut out, name);
        out.push_str(",\"reason\":");
        escape_into(&mut out, reason);
        let _ = {
            use std::fmt::Write as _;
            write!(out, ",\"capacity\":{}", self.capacity)
        };
        out.push_str(",\"health\":[");
        for (i, h) in health.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            h.json_into(&mut out);
        }
        out.push_str("],\"ranks\":[");
        for (rank, rf) in self.ranks.iter().enumerate() {
            if rank > 0 {
                out.push(',');
            }
            let _ = {
                use std::fmt::Write as _;
                write!(
                    out,
                    "{{\"rank\":{rank},\"dropped\":{},\"events\":[",
                    rf.dropped
                )
            };
            for (i, e) in rf.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                event_json(&mut out, e);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Render as plain text lines (one per retained event, prefixed by
    /// rank) for embedding into a `ValidationReport` — the same
    /// fixed-precision format the timeline text renderer uses.
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.len() + self.ranks.len());
        for (rank, rf) in self.ranks.iter().enumerate() {
            if rf.dropped > 0 {
                lines.push(format!(
                    "rank {rank}: ... {} earlier event(s) aged out",
                    rf.dropped
                ));
            }
            for e in &rf.events {
                match e {
                    Event::Span {
                        name, cat, t0, t1, ..
                    } => lines.push(format!(
                        "rank {rank}: [{t0:.9}s +{:.9}s] {cat:<8} {name}",
                        t1 - t0
                    )),
                    Event::Instant { name, cat, t, .. } => {
                        lines.push(format!(
                            "rank {rank}: [{t:.9}s           !] {cat:<8} {name}"
                        ));
                    }
                    Event::Counter { name, t, value, .. } => lines.push(format!(
                        "rank {rank}: [{t:.9}s           #] counter  {name} = {value}"
                    )),
                }
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::check;
    use crate::monitor::{HealthConfig, HealthEvent, HealthRule};

    fn span(track: u32, name: &str, t0: f64, t1: f64) -> Event {
        Event::Span {
            track,
            name: name.to_string(),
            cat: "compute".to_string(),
            t0,
            t1,
        }
    }

    #[test]
    fn ring_retains_the_newest_events() {
        let fr = FlightRecorder::new(1, 3);
        for i in 0..5 {
            fr.record(span(0, &format!("e{i}"), i as f64, i as f64 + 0.5));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.ranks[0].dropped, 2);
        let names: Vec<&str> = snap.ranks[0]
            .events
            .iter()
            .map(|e| match e {
                Event::Span { name, .. } => name.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
    }

    #[test]
    fn out_of_range_tracks_are_ignored() {
        let fr = FlightRecorder::new(2, 4);
        fr.record(span(7, "ghost", 0.0, 1.0));
        assert!(fr.snapshot().is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let fr = FlightRecorder::new(1, 0);
        assert_eq!(fr.capacity(), 1);
        fr.record(span(0, "a", 0.0, 1.0));
        fr.record(span(0, "b", 1.0, 2.0));
        assert_eq!(fr.snapshot().ranks[0].events.len(), 1);
    }

    #[test]
    fn json_is_well_formed_and_schema_tagged() {
        let fr = FlightRecorder::new(2, 4);
        fr.record(span(0, "compute", 0.0, 1.5));
        fr.record(Event::Instant {
            track: 1,
            name: "retransmit".into(),
            cat: "fault".into(),
            t: 0.25,
        });
        fr.record(Event::Counter {
            track: 1,
            name: "active_set".into(),
            t: 0.5,
            value: 12.0,
        });
        let health = vec![HealthEvent {
            rule: HealthRule::RetransmitStorm,
            track: 1,
            t: 0.25,
            detail: "3 retransmissions".into(),
        }];
        let doc = fr
            .snapshot()
            .to_json("unit", "retry budget exhausted", &health);
        check(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert!(doc.contains("\"schema\":\"shrinksvm-flight/v1\""));
        assert!(doc.contains("\"reason\":\"retry budget exhausted\""));
        assert!(doc.contains("\"rule\":\"retransmit_storm\""));
        assert!(doc.contains("\"kind\":\"counter\""));
    }

    #[test]
    fn snapshots_are_deterministic_across_identical_sequences() {
        let run = || {
            let fr = FlightRecorder::new(2, 3);
            for i in 0..6 {
                fr.record(span(
                    (i % 2) as u32,
                    &format!("e{i}"),
                    i as f64,
                    i as f64 + 1.0,
                ));
            }
            fr.snapshot().to_json("det", "test", &[])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn render_lines_mention_aged_out_events() {
        let fr = FlightRecorder::new(1, 2);
        for i in 0..4 {
            fr.record(span(0, &format!("e{i}"), i as f64, i as f64 + 1.0));
        }
        let lines = fr.snapshot().render_lines();
        assert!(
            lines[0].contains("2 earlier event(s) aged out"),
            "{lines:?}"
        );
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn flight_snapshot_feeds_health_analysis() {
        let fr = FlightRecorder::new(2, 8);
        for i in 0..4 {
            fr.record(Event::Instant {
                track: 1,
                name: "retransmit".into(),
                cat: "fault".into(),
                t: 0.1 * (i + 1) as f64,
            });
        }
        let health = crate::monitor::analyze(&fr.snapshot().all_events(), &HealthConfig::default());
        assert!(
            health.iter().any(|h| h.rule == HealthRule::RetransmitStorm),
            "{health:?}"
        );
    }
}
