//! Differential attribution: explain *where the time moved* between two
//! PerfDoctor reports.
//!
//! [`PerfDiff::between`] takes two parsed `PERF_*.json` documents
//! (schema [`PERF_SCHEMA`](crate::attrib::PERF_SCHEMA)) and decomposes
//! the makespan delta three ways:
//!
//! * **buckets** — per-bucket rank-time gains and losses (compute,
//!   transfer, idle, retransmit, recovery and its split), so "the
//!   speedup came out of idle and transfer" is a number, not a claim;
//! * **critical-path ops** — the union of both reports' `by_op` keys,
//!   each marked `entered` / `left` / `both`, with hop counts and
//!   seconds on each side — collective rounds dropping from 3 to 2 per
//!   iteration shows up here as a falling hop count;
//! * **what-if projections** — how each counterfactual (zero network,
//!   perfect balance, infinite cache) moved, i.e. whether the remaining
//!   headroom shrank along with the makespan.
//!
//! Rendered as a terminal report ([`PerfDiff::render_text`]) and as
//! deterministic JSON ([`PerfDiff::to_json`], schema
//! [`PERFDIFF_SCHEMA`]). Everything is keyed on the input documents
//! alone, so identical inputs produce byte-identical reports.

use crate::attrib::PERF_SCHEMA;
use crate::json::{escape_into, write_f64, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag stamped into every perf-diff JSON report.
pub const PERFDIFF_SCHEMA: &str = "shrinksvm-perfdiff/v1";

/// The bucket keys compared, in report order.
const BUCKET_KEYS: &[&str] = &[
    "compute",
    "transfer",
    "idle",
    "retransmit",
    "recovery",
    "recovery_waste",
    "recovery_backoff",
];

/// The what-if projection keys compared, in report order.
const WHATIF_KEYS: &[&str] = &["zero_network", "perfect_balance", "infinite_cache"];

/// One critical-path op's presence on each side of the diff.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpDelta {
    /// `(hops, secs)` in report A, when the op was on A's path.
    pub a: Option<(f64, f64)>,
    /// `(hops, secs)` in report B, when the op is on B's path.
    pub b: Option<(f64, f64)>,
}

impl OpDelta {
    /// `entered` (B only), `left` (A only) or `both`.
    pub fn status(&self) -> &'static str {
        match (self.a, self.b) {
            (None, Some(_)) => "entered",
            (Some(_), None) => "left",
            _ => "both",
        }
    }

    /// Seconds moved: B minus A, absent sides counting zero.
    pub fn delta_secs(&self) -> f64 {
        self.b.map_or(0.0, |(_, s)| s) - self.a.map_or(0.0, |(_, s)| s)
    }
}

/// The structured diff of two PerfDoctor reports (A = baseline,
/// B = candidate; every delta is B minus A).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfDiff {
    /// Display label for report A.
    pub label_a: String,
    /// Display label for report B.
    pub label_b: String,
    /// Makespans on each side.
    pub makespan: (f64, f64),
    /// Rank counts on each side (usually equal; the report flags a
    /// mismatch rather than refusing, since cross-scale diffs are
    /// legitimate).
    pub ranks: (f64, f64),
    /// Rank-time seconds per attribution bucket, `(name, a, b)` in
    /// [`BUCKET_KEYS`] order.
    pub buckets: Vec<(&'static str, f64, f64)>,
    /// Union of both critical paths' `by_op` tables.
    pub ops: BTreeMap<String, OpDelta>,
    /// What-if projections `(name, a, b)` in [`WHATIF_KEYS`] order.
    pub whatif: Vec<(&'static str, f64, f64)>,
}

fn require_schema(doc: &Value, label: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Value::as_str) {
        Some(s) if s == PERF_SCHEMA => Ok(()),
        Some(s) => Err(format!(
            "{label}: schema {s:?} is not a PerfDoctor report (want {PERF_SCHEMA:?})"
        )),
        None => Err(format!(
            "{label}: no string \"schema\" field — not a PerfDoctor report \
             (want {PERF_SCHEMA:?})"
        )),
    }
}

fn num_at<'v>(doc: &'v Value, path: &[&str], label: &str) -> Result<f64, String> {
    let mut v: &'v Value = doc;
    for key in path {
        v = v
            .get(key)
            .ok_or_else(|| format!("{label}: missing field {}", path.join(".")))?;
    }
    v.as_f64()
        .ok_or_else(|| format!("{label}: field {} is not a number", path.join(".")))
}

/// Pull `critical_path.by_op` into `(hops, secs)` per op key.
fn ops_of(doc: &Value, label: &str) -> Result<BTreeMap<String, (f64, f64)>, String> {
    let by_op = doc
        .get("critical_path")
        .and_then(|cp| cp.get("by_op"))
        .ok_or_else(|| format!("{label}: missing critical_path.by_op"))?;
    let Value::Object(entries) = by_op else {
        return Err(format!("{label}: critical_path.by_op is not an object"));
    };
    let mut out = BTreeMap::new();
    for (k, v) in entries {
        let hops = v
            .get("hops")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{label}: by_op[{k:?}] has no numeric hops"))?;
        let secs = v
            .get("secs")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{label}: by_op[{k:?}] has no numeric secs"))?;
        out.insert(k.clone(), (hops, secs));
    }
    Ok(out)
}

fn pct(delta: f64, base: f64) -> f64 {
    if base.abs() > 0.0 {
        100.0 * delta / base
    } else if delta == 0.0 {
        0.0
    } else {
        f64::INFINITY
    }
}

impl PerfDiff {
    /// Diff two parsed PerfDoctor documents (A = baseline,
    /// B = candidate).
    ///
    /// # Errors
    ///
    /// Either document missing the [`PERF_SCHEMA`] tag or any of the
    /// compared fields — the diff never guesses at absent numbers.
    pub fn between(a: &Value, b: &Value, label_a: &str, label_b: &str) -> Result<PerfDiff, String> {
        require_schema(a, label_a)?;
        require_schema(b, label_b)?;
        let makespan = (
            num_at(a, &["makespan"], label_a)?,
            num_at(b, &["makespan"], label_b)?,
        );
        let ranks = (
            num_at(a, &["ranks"], label_a)?,
            num_at(b, &["ranks"], label_b)?,
        );
        let mut buckets = Vec::with_capacity(BUCKET_KEYS.len());
        for &k in BUCKET_KEYS {
            buckets.push((
                k,
                num_at(a, &["buckets", k], label_a)?,
                num_at(b, &["buckets", k], label_b)?,
            ));
        }
        let ops_a = ops_of(a, label_a)?;
        let ops_b = ops_of(b, label_b)?;
        let mut ops: BTreeMap<String, OpDelta> = BTreeMap::new();
        for (k, &v) in &ops_a {
            ops.entry(k.clone()).or_default().a = Some(v);
        }
        for (k, &v) in &ops_b {
            ops.entry(k.clone()).or_default().b = Some(v);
        }
        let mut whatif = Vec::with_capacity(WHATIF_KEYS.len());
        for &k in WHATIF_KEYS {
            whatif.push((
                k,
                num_at(a, &["whatif", k], label_a)?,
                num_at(b, &["whatif", k], label_b)?,
            ));
        }
        Ok(PerfDiff {
            label_a: label_a.to_string(),
            label_b: label_b.to_string(),
            makespan,
            ranks,
            buckets,
            ops,
            whatif,
        })
    }

    /// The terminal report: the makespan headline, bucket movements
    /// sorted by report order, the op entries/exits, and the projection
    /// shifts.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        let (ma, mb) = self.makespan;
        let d = mb - ma;
        let _ = writeln!(out, "== perf-diff: {} -> {} ==", self.label_a, self.label_b);
        let _ = writeln!(
            out,
            "makespan {ma:.6}s -> {mb:.6}s  ({}{:.6}s, {}{:.2}%)",
            sign(d),
            d.abs(),
            sign(d),
            pct(d, ma).abs()
        );
        let (ra, rb) = self.ranks;
        if ra == rb {
            let _ = writeln!(out, "ranks {ra}");
        } else {
            let _ = writeln!(out, "ranks {ra} -> {rb}  (CROSS-SCALE DIFF)");
        }
        out.push_str("buckets (total rank-time seconds, candidate - baseline):\n");
        for &(k, va, vb) in &self.buckets {
            let dv = vb - va;
            if va == 0.0 && vb == 0.0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {k:<16} {va:>12.6} -> {vb:>12.6}  {}{:.6} ({}{:.2}%)",
                sign(dv),
                dv.abs(),
                sign(dv),
                pct(dv, va).abs()
            );
        }
        out.push_str("critical-path ops (hops x secs on the binding chain):\n");
        for (k, op) in &self.ops {
            match (op.a, op.b) {
                (Some((ha, sa)), Some((hb, sb))) => {
                    let _ = writeln!(
                        out,
                        "  {k:<28} {ha:>4} hops {sa:>12.6}s -> {hb:>4} hops {sb:>12.6}s  \
                         {}{:.6}s",
                        sign(sb - sa),
                        (sb - sa).abs()
                    );
                }
                (Some((ha, sa)), None) => {
                    let _ = writeln!(out, "  {k:<28} LEFT the path (was {ha} hops, {sa:.6}s)");
                }
                (None, Some((hb, sb))) => {
                    let _ = writeln!(out, "  {k:<28} ENTERED the path ({hb} hops, {sb:.6}s)");
                }
                (None, None) => {}
            }
        }
        out.push_str("what-if projections (remaining headroom):\n");
        for &(k, va, vb) in &self.whatif {
            let dv = vb - va;
            let _ = writeln!(
                out,
                "  {k:<16} {va:>12.6} -> {vb:>12.6}  {}{:.6}",
                sign(dv),
                dv.abs()
            );
        }
        out
    }

    /// Deterministic JSON under [`PERFDIFF_SCHEMA`]: every compared
    /// number on both sides plus its delta, ops in sorted key order with
    /// `null` for the absent side.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"schema\":");
        escape_into(&mut out, PERFDIFF_SCHEMA);
        out.push_str(",\"a\":");
        escape_into(&mut out, &self.label_a);
        out.push_str(",\"b\":");
        escape_into(&mut out, &self.label_b);
        let (ma, mb) = self.makespan;
        out.push_str(",\"makespan\":{\"a\":");
        write_f64(&mut out, ma);
        out.push_str(",\"b\":");
        write_f64(&mut out, mb);
        out.push_str(",\"delta\":");
        write_f64(&mut out, mb - ma);
        out.push_str("},\"ranks\":{\"a\":");
        write_f64(&mut out, self.ranks.0);
        out.push_str(",\"b\":");
        write_f64(&mut out, self.ranks.1);
        out.push_str("},\"buckets\":{");
        for (i, &(k, va, vb)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push_str(":{\"a\":");
            write_f64(&mut out, va);
            out.push_str(",\"b\":");
            write_f64(&mut out, vb);
            out.push_str(",\"delta\":");
            write_f64(&mut out, vb - va);
            out.push('}');
        }
        out.push_str("},\"ops\":{");
        for (i, (k, op)) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push_str(":{\"status\":");
            escape_into(&mut out, op.status());
            for (side, v) in [("a", op.a), ("b", op.b)] {
                out.push(',');
                escape_into(&mut out, &format!("{side}_hops"));
                out.push(':');
                match v {
                    Some((h, _)) => write_f64(&mut out, h),
                    None => out.push_str("null"),
                }
                out.push(',');
                escape_into(&mut out, &format!("{side}_secs"));
                out.push(':');
                match v {
                    Some((_, s)) => write_f64(&mut out, s),
                    None => out.push_str("null"),
                }
            }
            out.push_str(",\"delta_secs\":");
            write_f64(&mut out, op.delta_secs());
            out.push('}');
        }
        out.push_str("},\"whatif\":{");
        for (i, &(k, va, vb)) in self.whatif.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push_str(":{\"a\":");
            write_f64(&mut out, va);
            out.push_str(",\"b\":");
            write_f64(&mut out, vb);
            out.push_str(",\"delta\":");
            write_f64(&mut out, vb - va);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

fn sign(v: f64) -> &'static str {
    if v >= 0.0 {
        "+"
    } else {
        "-"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::PerfDoctor;
    use crate::critpath::{DepLog, DepRecorder};
    use crate::json::{check, parse};

    /// Two ranks exchange a tagged message after computing; `slow`
    /// stretches rank 0's compute (and with it the wire wait on rank 1).
    fn doc(slow: f64, rounds: u32) -> Value {
        let mut r0 = DepRecorder::new();
        let mut r1 = DepRecorder::new();
        r0.compute(0.0, slow, slow * 0.5, "fused_sweep");
        r1.compute(0.0, 0.5, 0.5, "fused_sweep");
        let mut c0 = slow;
        let mut c1 = 0.5;
        for round in 0..rounds {
            let tag = 0x10 + u64::from(round);
            let seq = u64::from(round);
            r0.send(c0, 0.25, 1, tag, seq);
            c0 += 0.25; // the departure clock the recv must echo
            r1.recv(c1, 0, tag, seq, c0, 0.5, 0.0);
            c1 = c1.max(c0 + 0.5);
        }
        let log = DepLog::from_ranks(vec![r0.finish(), r1.finish()]);
        let json = PerfDoctor::analyze(&log, 0.0).expect("analyze").to_json();
        parse(&json).expect("parse")
    }

    #[test]
    fn diff_decomposes_the_makespan_delta() {
        let a = doc(2.0, 2);
        let b = doc(1.0, 1);
        let d = PerfDiff::between(&a, &b, "before", "after").expect("diff");
        assert!(d.makespan.0 > d.makespan.1, "{:?}", d.makespan);
        let compute = d
            .buckets
            .iter()
            .find(|&&(k, _, _)| k == "compute")
            .expect("compute bucket");
        assert!(compute.1 > compute.2, "compute should shrink: {compute:?}");
        // The second round's p2p hop chain left the path.
        assert!(
            d.ops.values().any(|op| op.status() == "both"),
            "{:?}",
            d.ops
        );
        let text = d.render_text();
        assert!(text.contains("== perf-diff: before -> after =="), "{text}");
        assert!(text.contains("makespan"), "{text}");
        assert!(text.contains("zero_network"), "{text}");
    }

    #[test]
    fn entered_and_left_ops_are_flagged() {
        let only_a = OpDelta {
            a: Some((2.0, 0.5)),
            b: None,
        };
        let only_b = OpDelta {
            a: None,
            b: Some((1.0, 0.25)),
        };
        assert_eq!(only_a.status(), "left");
        assert_eq!(only_b.status(), "entered");
        assert_eq!(only_a.delta_secs(), -0.5);
        assert_eq!(only_b.delta_secs(), 0.25);
    }

    #[test]
    fn json_is_well_formed_and_deterministic() {
        let a = doc(2.0, 2);
        let b = doc(1.0, 1);
        let d1 = PerfDiff::between(&a, &b, "x", "y").expect("diff");
        let d2 = PerfDiff::between(&a, &b, "x", "y").expect("diff");
        let j1 = d1.to_json();
        assert_eq!(j1, d2.to_json());
        check(&j1).unwrap_or_else(|e| panic!("{e}\n{j1}"));
        assert!(j1.contains("\"schema\":\"shrinksvm-perfdiff/v1\""), "{j1}");
        assert!(j1.contains("\"makespan\":{\"a\":"), "{j1}");
        assert!(j1.contains("\"status\":"), "{j1}");
        let parsed = parse(&j1).expect("round-trip");
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some(PERFDIFF_SCHEMA)
        );
    }

    #[test]
    fn rejects_non_perf_documents() {
        let bench = parse("{\"schema\":1,\"modeled_time\":0.5}").expect("parse");
        let perf = doc(1.0, 1);
        let err = PerfDiff::between(&bench, &perf, "a", "b").expect_err("must reject");
        assert!(err.contains("not a PerfDoctor report"), "{err}");
        let err = PerfDiff::between(&perf, &bench, "a", "b").expect_err("must reject");
        assert!(err.contains('b'), "{err}");
    }
}
