//! Minimal hand-rolled JSON: a writer helper, a well-formedness checker
//! and a small DOM parser, all dependency-free.
//!
//! The writer side is a pair of formatting helpers ([`escape_into`],
//! [`write_f64`]) used by the trace/report emitters; everything is written
//! with plain `String` pushes so byte-identical inputs produce
//! byte-identical documents. The reader side is two layers: [`check`] is a
//! strict recursive-descent validator that builds no DOM, used by tests
//! and CI to prove emitted traces and reports are loadable by real tools;
//! [`parse`] builds a [`Value`] tree for consumers that need the data
//! (the `bench-diff` regression gate). `parse` accepts exactly the
//! grammar `check` accepts, with one documented leniency: a lone UTF-16
//! surrogate in a `\u` escape (which `check` allows — it only validates
//! hex digits) decodes to U+FFFD rather than failing.

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Rust's `Display` for `f64` is the
/// shortest round-trip decimal form and never uses exponent notation, so
/// the output is always a valid JSON number. Non-finite values have no
/// JSON number form and are written as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Maximum nesting depth [`check`] accepts, bounding recursion.
const MAX_DEPTH: usize = 128;

/// Validate that `text` is exactly one well-formed JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset and what was expected when the
/// document is malformed.
pub fn check(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + word.len() && &b[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte {c:#04x} in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // integer part: 0, or [1-9][0-9]*
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {start}")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad number fraction at byte {pos}"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad number exponent at byte {pos}"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

/// A parsed JSON document.
///
/// Objects preserve source order and duplicate keys; [`Value::get`]
/// returns the *last* occurrence, matching how most real parsers resolve
/// duplicates.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order, duplicates preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on other variants or missing
    /// keys. Duplicate keys resolve to the last occurrence.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse `text` as exactly one JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns a message naming the byte offset and what was expected when
/// the document is malformed (same grammar as [`check`]).
pub fn parse(text: &str) -> Result<Value, String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    let v = parse_value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b't') => literal(b, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(b, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(b, pos, b"null").map(|()| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        let v = parse_value(b, pos, depth + 1)?;
        members.push((key, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut v = 0u32;
    for _ in 0..4 {
        match b.get(*pos) {
            Some(h) if h.is_ascii_hexdigit() => {
                v = (v << 4) | (*h as char).to_digit(16).unwrap_or(0);
                *pos += 1;
            }
            _ => return Err(format!("bad \\u escape at byte {pos}")),
        }
    }
    Ok(v)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let mut out = String::new();
    *pos += 1; // consume opening quote
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => {
                        out.push('"');
                        *pos += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        *pos += 1;
                    }
                    Some(b'/') => {
                        out.push('/');
                        *pos += 1;
                    }
                    Some(b'b') => {
                        out.push('\u{8}');
                        *pos += 1;
                    }
                    Some(b'f') => {
                        out.push('\u{c}');
                        *pos += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        *pos += 1;
                    }
                    Some(b'r') => {
                        out.push('\r');
                        *pos += 1;
                    }
                    Some(b't') => {
                        out.push('\t');
                        *pos += 1;
                    }
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(b, pos)?;
                        let cp = if (0xd800..0xdc00).contains(&hi) {
                            // High surrogate: consume a following
                            // \uXXXX low surrogate if present.
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                let save = *pos;
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                if (0xdc00..0xe000).contains(&lo) {
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    // Valid escape but not a low
                                    // surrogate: rewind and replace the
                                    // lone high surrogate.
                                    *pos = save;
                                    0xfffd
                                }
                            } else {
                                0xfffd
                            }
                        } else if (0xdc00..0xe000).contains(&hi) {
                            0xfffd // lone low surrogate
                        } else {
                            hi
                        };
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte {c:#04x} in string at {pos}")),
            _ => {
                // Copy one UTF-8 scalar; the input is a &str so byte
                // boundaries are always valid.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                out.push_str(
                    std::str::from_utf8(&b[*pos..*pos + len])
                        .map_err(|_| format!("bad UTF-8 in string starting at byte {start}"))?,
                );
                *pos += len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    number(b, pos)?;
    let text =
        std::str::from_utf8(&b[start..*pos]).map_err(|_| format!("bad number bytes at {start}"))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|e| format!("unparseable number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_render_as_json_numbers() {
        let mut out = String::new();
        write_f64(&mut out, 1.5);
        out.push(' ');
        write_f64(&mut out, -0.25);
        out.push(' ');
        write_f64(&mut out, 3.0);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "1.5 -0.25 3 null");
        for part in out.split(' ') {
            check(part).unwrap();
        }
    }

    #[test]
    fn checker_accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"hi \\u00e9\"",
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  { \"k\" : [ 1 , 2 ] }  ",
        ] {
            check(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "{} {}",
            "nul",
            "\"bad\\q\"",
        ] {
            assert!(check(doc).is_err(), "{doc:?} accepted");
        }
    }

    #[test]
    fn checker_rejects_pathological_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(check(&deep).is_err());
    }

    #[test]
    fn escaped_strings_roundtrip_through_checker() {
        let mut out = String::new();
        escape_into(&mut out, "weird \\ \" \n chars \u{7f} é");
        check(&out).unwrap();
    }

    #[test]
    fn parse_builds_the_expected_tree() {
        let v = parse(r#"{"a":[1,2.5,{"b":null}],"c":"x\n","d":true}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\n"));
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        match v.get("a") {
            Some(Value::Array(items)) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].as_f64(), Some(2.5));
                assert_eq!(items[2].get("b"), Some(&Value::Null));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_what_check_rejects() {
        for doc in ["", "{", "[1,]", "{\"a\":}", "01", "1.", "{} {}"] {
            assert!(parse(doc).is_err(), "{doc:?} parsed");
        }
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn duplicate_keys_resolve_to_the_last() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(2.0));
        match &v {
            Value::Object(members) => assert_eq!(members.len(), 2),
            other => panic!("expected object, got {other:?}"),
        }
    }
}
