//! Minimal hand-rolled JSON: a writer helper and a well-formedness
//! checker, both dependency-free.
//!
//! The writer side is a pair of formatting helpers ([`escape_into`],
//! [`write_f64`]) used by the trace/report emitters; everything is written
//! with plain `String` pushes so byte-identical inputs produce
//! byte-identical documents. The reader side ([`check`]) is a strict
//! recursive-descent parser that validates syntax only (it builds no DOM),
//! used by tests and CI to prove emitted traces and reports are loadable
//! by real tools.

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Rust's `Display` for `f64` is the
/// shortest round-trip decimal form and never uses exponent notation, so
/// the output is always a valid JSON number. Non-finite values have no
/// JSON number form and are written as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Maximum nesting depth [`check`] accepts, bounding recursion.
const MAX_DEPTH: usize = 128;

/// Validate that `text` is exactly one well-formed JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset and what was expected when the
/// document is malformed.
pub fn check(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + word.len() && &b[*pos..*pos + word.len()] == word {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte {c:#04x} in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // integer part: 0, or [1-9][0-9]*
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {start}")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad number fraction at byte {pos}"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad number exponent at byte {pos}"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_render_as_json_numbers() {
        let mut out = String::new();
        write_f64(&mut out, 1.5);
        out.push(' ');
        write_f64(&mut out, -0.25);
        out.push(' ');
        write_f64(&mut out, 3.0);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "1.5 -0.25 3 null");
        for part in out.split(' ') {
            check(part).unwrap();
        }
    }

    #[test]
    fn checker_accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"hi \\u00e9\"",
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  { \"k\" : [ 1 , 2 ] }  ",
        ] {
            check(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "{} {}",
            "nul",
            "\"bad\\q\"",
        ] {
            assert!(check(doc).is_err(), "{doc:?} accepted");
        }
    }

    #[test]
    fn checker_rejects_pathological_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(check(&deep).is_err());
    }

    #[test]
    fn escaped_strings_roundtrip_through_checker() {
        let mut out = String::new();
        escape_into(&mut out, "weird \\ \" \n chars \u{7f} é");
        check(&out).unwrap();
    }
}
