//! Fuzz-style edge-case suite for the dependency-free JSON layer.
//!
//! The checker (`json::check`) guards every artifact the repo writes and
//! the parser (`json::parse`) now feeds the bench-diff regression gate, so
//! this suite hammers the corners a hand-rolled recursive-descent pass
//! gets wrong: nesting right at the recursion bound, broken `\u` escapes
//! and lone surrogates, signed-zero and exponent round-trips, duplicate
//! keys, and — with a tiny in-test xorshift generator (the crate is
//! dependency-free by design) — random mutations of well-formed documents
//! that must never panic, only return `Err` or a valid tree.

use shrinksvm_obs::json::{check, parse, write_f64, Value};

/// `n` nested containers around a scalar, e.g. `[[[0]]]` for n = 3.
fn nested(open: char, close: char, n: usize, core: &str) -> String {
    let mut s = String::new();
    for _ in 0..n {
        s.push(open);
        if open == '{' {
            s.push_str("\"k\":");
        }
    }
    s.push_str(core);
    for _ in 0..n {
        s.push(close);
    }
    s
}

// ------------------------------------------------------------ depth bound

#[test]
fn nesting_at_the_recursion_bound_is_accepted_and_one_past_is_not() {
    // value() admits depth ≤ MAX_DEPTH (128). The outermost container is
    // checked at depth 0 and the innermost scalar at depth n, so exactly
    // 128 nested containers are legal and 129 are not.
    for (open, close) in [('[', ']'), ('{', '}')] {
        let at = nested(open, close, 128, "0");
        let past = nested(open, close, 129, "0");
        assert!(check(&at).is_ok(), "{open}x128 must pass");
        assert!(check(&past).is_err(), "{open}x129 must fail");
        assert!(parse(&at).is_ok(), "parse {open}x128 must pass");
        assert!(parse(&past).is_err(), "parse {open}x129 must fail");
    }
}

#[test]
fn deep_mixed_nesting_does_not_overflow_the_stack() {
    let doc = nested('[', ']', 64, &nested('{', '}', 64, "true"));
    assert!(check(&doc).is_ok());
    assert!(parse(&doc).is_ok());
}

// ------------------------------------------------------------ \u escapes

#[test]
fn surrogate_pair_decodes_and_lone_surrogates_are_replaced() {
    // U+1F600 as a surrogate pair.
    let v = parse("\"\\uD83D\\uDE00\"").expect("pair parses");
    assert_eq!(v.as_str(), Some("😀"));

    // A lone high surrogate (nothing after) and a lone low surrogate both
    // decode leniently to U+FFFD rather than failing the whole document.
    assert_eq!(
        parse("\"\\uD83D\"").expect("lone high").as_str(),
        Some("\u{FFFD}")
    );
    assert_eq!(
        parse("\"\\uDE00\"").expect("lone low").as_str(),
        Some("\u{FFFD}")
    );
    // High surrogate followed by a non-surrogate escape: replacement char,
    // then the literal second character survives.
    assert_eq!(
        parse("\"\\uD83Dx\"").expect("high then x").as_str(),
        Some("\u{FFFD}x")
    );
    assert_eq!(
        parse("\"\\uD83D\\u0041\"").expect("high then A").as_str(),
        Some("\u{FFFD}A")
    );
}

#[test]
fn malformed_unicode_escapes_are_rejected_not_panicked() {
    for bad in [
        "\"\\u\"",      // no digits
        "\"\\u12\"",    // short
        "\"\\u12G4\"",  // non-hex
        "\"\\uD83D\\u", // truncated second escape
        "\"\\q\"",      // unknown escape
        "\"\\\"",       // escape then EOF
    ] {
        assert!(check(bad).is_err(), "{bad:?} must fail check");
        assert!(parse(bad).is_err(), "{bad:?} must fail parse");
    }
}

#[test]
fn control_characters_in_strings_are_rejected() {
    assert!(check("\"a\u{0001}b\"").is_err());
    assert!(parse("\"a\nb\"").is_err(), "raw newline must be escaped");
    assert!(parse("\"a\\nb\"").is_ok(), "escaped newline is fine");
}

// ------------------------------------------------------------ numbers

#[test]
fn negative_zero_round_trips_through_writer_and_parser() {
    let mut s = String::new();
    write_f64(&mut s, -0.0);
    assert_eq!(s, "-0", "Rust Display renders the sign");
    let back = parse(&s).expect("writer output parses").as_f64();
    assert_eq!(back.map(f64::to_bits), Some((-0.0f64).to_bits()));
}

#[test]
fn exponent_forms_round_trip_bit_for_bit() {
    for v in [
        1.5e-6,
        1.0 / 6.8e9,
        f64::MIN_POSITIVE,
        f64::MAX,
        -2.2250738585072014e-308,
        1e308,
        123_456_789.123_456_78,
        0.1 + 0.2, // classic non-representable sum
    ] {
        let mut s = String::new();
        write_f64(&mut s, v);
        let back = parse(&s)
            .unwrap_or_else(|e| panic!("{s}: {e}"))
            .as_f64()
            .expect("number");
        assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s} -> {back}");
    }
}

#[test]
fn number_grammar_corners() {
    for ok in ["0", "-0", "0.5", "1e4", "1E+4", "2.5e-308", "[1,2e2,3.0]"] {
        assert!(check(ok).is_ok(), "{ok} must pass");
        assert!(parse(ok).is_ok(), "{ok} must parse");
    }
    for bad in [
        "01", "+1", ".5", "1.", "1e", "1e+", "-", "0x10", "NaN", "Infinity",
    ] {
        assert!(check(bad).is_err(), "{bad} must fail check");
        assert!(parse(bad).is_err(), "{bad} must fail parse");
    }
}

#[test]
fn nonfinite_values_write_as_null() {
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut s = String::new();
        write_f64(&mut s, v);
        assert_eq!(s, "null");
        assert!(matches!(parse(&s), Ok(Value::Null)));
    }
}

// ------------------------------------------------------------ objects

#[test]
fn duplicate_keys_are_preserved_and_get_returns_the_last() {
    let v = parse("{\"a\":1,\"a\":2,\"b\":3,\"a\":4}").expect("dupes parse");
    assert_eq!(v.get("a").and_then(Value::as_f64), Some(4.0));
    let Value::Object(pairs) = &v else {
        panic!("expected object")
    };
    assert_eq!(pairs.len(), 4, "all occurrences kept in order");
}

#[test]
fn empty_and_whitespace_heavy_documents() {
    assert!(parse("").is_err());
    assert!(parse("   \t\n ").is_err());
    assert!(parse(" \n{ \"a\" : [ ] , \"b\" : { } }\t").is_ok());
    assert!(parse("{} {}").is_err(), "trailing garbage must fail");
    assert!(parse("[1,]").is_err(), "trailing comma must fail");
    assert!(parse("{\"a\":}").is_err(), "missing value must fail");
}

// ------------------------------------------------------- mutation fuzzing

/// Minimal xorshift64* so the suite stays dependency-free and seeded.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn random_mutations_never_panic_and_parse_agrees_with_check() {
    let seeds: &[&str] = &[
        "{\"schema\":1,\"modeled_time\":1.5e-6,\"extras\":{\"a\":-0.5}}",
        "[[1,2,3],{\"k\":\"v\\n\"},true,false,null,-0,1e300]",
        "{\"s\":\"\\uD83D\\uDE00 snowman \\u2603\",\"n\":[0.1,0.2]}",
    ];
    let mutations = [
        b'{', b'}', b'[', b']', b'"', b',', b':', b'\\', b'u', b'0', b'e', b'-',
    ];
    let mut rng = XorShift(0x5EED_CAFE_F00D_D00D);
    for seed in seeds {
        for _ in 0..400 {
            let mut bytes = seed.as_bytes().to_vec();
            // 1–3 point mutations: overwrite, insert, or delete a byte.
            for _ in 0..=(rng.next() % 3) {
                let at = (rng.next() as usize) % bytes.len();
                match rng.next() % 3 {
                    0 => bytes[at] = mutations[(rng.next() as usize) % mutations.len()],
                    1 => bytes.insert(at, mutations[(rng.next() as usize) % mutations.len()]),
                    _ => {
                        bytes.remove(at);
                    }
                }
            }
            let Ok(text) = String::from_utf8(bytes) else {
                continue;
            };
            // Must not panic; and parse succeeds iff check does (parse is
            // strictly the same grammar, lenient only *inside* accepted
            // surrogate escapes).
            let c = check(&text);
            let p = parse(&text);
            assert_eq!(
                c.is_ok(),
                p.is_ok(),
                "checker/parser disagree on {text:?}: check={c:?} parse={:?}",
                p.map(|_| ())
            );
        }
    }
}
