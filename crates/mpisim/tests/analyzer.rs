//! Deliberately-buggy MPI programs, each asserting the *exact* diagnosis the
//! correctness layer produces — and that it arrives in well under a second,
//! not after a timeout.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use shrinksvm_mpisim::Universe;

/// Run `f`, expect a panic, and return (panic message, elapsed wall time).
// allow-wall-clock: this suite asserts the diagnosis arrives fast in
// *host* time — the elapsed read is the point of the test
#[allow(clippy::disallowed_methods)]
fn diagnose<F: FnOnce() + Send>(f: F) -> (String, Duration) {
    let start = Instant::now();
    let payload = catch_unwind(AssertUnwindSafe(f)).expect_err("program must be diagnosed");
    let elapsed = start.elapsed();
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a string");
    (msg, elapsed)
}

#[test]
fn cyclic_recv_deadlock_is_diagnosed_fast_with_full_report() {
    // Classic head-on deadlock: both ranks receive before sending.
    let (msg, elapsed) = diagnose(|| {
        Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let _ = c.recv(peer, 7);
            c.send(peer, 7, &[1]);
        });
    });
    assert!(
        elapsed < Duration::from_secs(1),
        "diagnosis took {elapsed:?}, must not ride the timeout path"
    );
    assert!(msg.contains("communication deadlock diagnosed"), "{msg}");
    assert!(msg.contains("wait-for cycle"), "{msg}");
    // Every blocked rank is named with the operation it is stuck in and
    // the tag it is matching.
    assert!(
        msg.contains("rank 0 blocked in recv(src=1, tag=7)"),
        "{msg}"
    );
    assert!(
        msg.contains("rank 1 blocked in recv(src=0, tag=7)"),
        "{msg}"
    );
}

#[test]
fn three_rank_ring_deadlock_names_the_cycle() {
    let (msg, elapsed) = diagnose(|| {
        Universe::new(3).run(|c| {
            // Each rank waits on its left neighbor; nobody ever sends.
            let left = (c.rank() + 2) % 3;
            let _ = c.recv(left, 5);
        });
    });
    assert!(elapsed < Duration::from_secs(1), "{elapsed:?}");
    assert!(msg.contains("wait-for cycle"), "{msg}");
    for r in 0..3 {
        assert!(msg.contains(&format!("rank {r} blocked in recv")), "{msg}");
    }
}

#[test]
fn recv_from_finished_rank_is_diagnosed_not_hung() {
    let (msg, elapsed) = diagnose(|| {
        Universe::new(2).run(|c| {
            if c.rank() == 1 {
                // rank 0 finishes immediately; this receive can never match
                let _ = c.recv(0, 9);
            }
        });
    });
    assert!(elapsed < Duration::from_secs(1), "{elapsed:?}");
    assert!(msg.contains("can never complete"), "{msg}");
    assert!(msg.contains("rank 0 already finished"), "{msg}");
}

#[test]
fn rank_divergent_collective_order_is_diagnosed() {
    // SPMD violation: rank 0 broadcasts while every other rank hits a
    // barrier. The lockstep ledger must name both operations and ranks.
    let (msg, elapsed) = diagnose(|| {
        Universe::new(2).validated().run(|c| {
            if c.rank() == 0 {
                c.bcast(0, &[1]);
            } else {
                c.barrier();
            }
        });
    });
    assert!(elapsed < Duration::from_secs(1), "{elapsed:?}");
    assert!(
        msg.contains("collective lockstep violation at collective #0"),
        "{msg}"
    );
    // One rank's op is the reference, the other diverged; both ops named.
    assert!(msg.contains("Bcast(root=0)"), "{msg}");
    assert!(msg.contains("Barrier"), "{msg}");
    assert!(msg.contains("SPMD collective sequences diverged"), "{msg}");
}

#[test]
fn mismatched_bcast_roots_are_diagnosed() {
    let (msg, _) = diagnose(|| {
        Universe::new(2).validated().run(|c| {
            let root = c.rank(); // every rank claims itself as root
            c.bcast(root, &[1]);
        });
    });
    assert!(msg.contains("collective lockstep violation"), "{msg}");
    assert!(msg.contains("Bcast(root=0)"), "{msg}");
    assert!(msg.contains("Bcast(root=1)"), "{msg}");
}

#[test]
fn leaked_isend_is_reported_with_src_dst_tag() {
    // rank 0 isends a message rank 1 never receives; conservation check
    // must name source, destination, tag and size.
    let (_, report) = Universe::new(2).validated().run_report(|c| {
        if c.rank() == 0 {
            c.isend(1, 0x2a, &[0u8; 16]);
        }
    });
    assert!(!report.is_clean());
    let s = report.to_string();
    assert!(s.contains("sent but never received"), "{s}");
    assert!(s.contains("from rank 0 to rank 1"), "{s}");
    assert!(s.contains("tag 0x2a"), "{s}");
    assert!(s.contains("16-byte"), "{s}");
}

#[test]
fn leaked_isend_panics_in_plain_run() {
    // Universe::run (as opposed to run_report) escalates a dirty report.
    let (msg, _) = diagnose(|| {
        Universe::new(2).validated().run(|c| {
            if c.rank() == 0 {
                c.isend(1, 3, &[9]);
            }
        });
    });
    assert!(msg.contains("communication validation failed"), "{msg}");
    assert!(msg.contains("never received"), "{msg}");
}

#[test]
fn user_tag_in_collective_namespace_is_reported() {
    let bad_tag = 1u64 << 40; // above MAX_USER_TAG
    let (_, report) = Universe::new(2).validated().run_report(move |c| {
        if c.rank() == 0 {
            c.send(1, bad_tag, &[1]);
        } else {
            let _ = c.recv(0, bad_tag);
        }
    });
    let s = report.to_string();
    assert!(!report.is_clean());
    assert!(s.contains("tag discipline"), "{s}");
    assert!(s.contains("rank 0 called send"), "{s}");
    assert!(s.contains("rank 1 called recv"), "{s}");
}

#[test]
fn unmatched_buffered_message_is_reported() {
    // rank 1 pulls the tag-2 message off the channel while looking for
    // tag 1, then finishes without ever matching it.
    let (_, report) = Universe::new(2).validated().run_report(|c| {
        if c.rank() == 0 {
            c.send(1, 2, &[1, 2]);
            c.send(1, 1, &[3]);
        } else {
            let _ = c.recv(0, 1);
        }
    });
    let s = report.to_string();
    assert!(!report.is_clean());
    assert!(s.contains("rank 1 buffered"), "{s}");
    assert!(s.contains("no receive ever matched"), "{s}");
}

#[test]
fn correct_program_stays_clean_under_full_validation() {
    let (out, report) = Universe::new(4).validated().run_report(|c| {
        let sum = c.allreduce_f64_sum(1.0);
        c.barrier();
        let data = c.bcast(2, &[5]);
        let peer = c.rank() ^ 1;
        let echoed = c.sendrecv(peer, 11, &[c.rank() as u8]);
        (sum, data, echoed)
    });
    assert!(report.is_clean(), "{report}");
    assert!(out.iter().all(|o| o.value.0 == 4.0));
}
