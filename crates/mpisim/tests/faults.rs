//! Chaos suite for the fault-injection fabric: planted fault scenarios
//! across point-to-point and collective phases, transport recovery, named
//! fail-fast diagnoses, and seed determinism.
//!
//! No scenario rides a wall-clock timeout: every fault either gets
//! survived (and the run's result is exact) or is diagnosed by name
//! (rank/op/tag) within milliseconds.

use std::time::Duration;

use shrinksvm_mpisim::{CostParams, FaultPlan, Universe};

const ANY: Option<usize> = None;
const FOREVER: f64 = f64::INFINITY;

/// Scenario 1: a dropped point-to-point message is retransmitted and the
/// payload still arrives intact.
#[test]
fn dropped_message_is_retried_and_survives() {
    let plan = FaultPlan::new(1).drop_messages(Some(0), Some(1), 1.0, 0.0, FOREVER, 1);
    let (out, report) = Universe::new(2).with_faults(plan).run_report(|c| {
        if c.rank() == 0 {
            c.send(1, 5, &[10, 20, 30]);
            vec![]
        } else {
            c.recv(0, 5)
        }
    });
    assert_eq!(out[1].value, vec![10, 20, 30]);
    assert_eq!(out[1].stats.drops_seen, 1);
    assert_eq!(out[1].stats.retries, 1);
    assert!(out[1].stats.retry_time > 0.0);
    let s = report.to_string();
    assert!(s.contains("fault-injection ledger (1 event(s))"), "{s}");
    assert!(s.contains("lost in flight; retransmitted"), "{s}");
}

/// Scenario 2: every copy of a message is dropped — the transport exhausts
/// its retry budget and fails fast with a named diagnosis (rank, tag,
/// attempt count), not a timeout.
#[test]
#[should_panic(expected = "tag 0x5 from rank 0 permanently lost after 3 transmission attempt(s)")]
fn exhausted_retry_budget_fails_fast_with_named_diagnosis() {
    let plan = FaultPlan::new(1).with_max_retries(2).drop_messages(
        Some(0),
        Some(1),
        1.0,
        0.0,
        FOREVER,
        u64::MAX,
    );
    Universe::new(2).with_faults(plan).run(|c| {
        if c.rank() == 0 {
            c.send(1, 5, &[1]);
            vec![]
        } else {
            c.recv(0, 5)
        }
    });
}

/// Scenario 3: an injected payload corruption is caught by the envelope
/// checksum and the copy is retransmitted.
#[test]
fn corruption_is_detected_by_checksum_and_retried() {
    let plan = FaultPlan::new(3).corrupt_messages(Some(0), Some(1), 1.0, 0.0, FOREVER, 1);
    let (out, report) = Universe::new(2).with_faults(plan).run_report(|c| {
        if c.rank() == 0 {
            c.send_f64s(1, 7, &[1.5, -2.5]);
            vec![]
        } else {
            c.recv_f64s(0, 7)
        }
    });
    assert_eq!(out[1].value, vec![1.5, -2.5]);
    assert_eq!(out[1].stats.corruptions_seen, 1);
    assert_eq!(out[1].stats.retries, 1);
    assert!(
        report.to_string().contains("failed its checksum"),
        "{}",
        report
    );
}

/// Scenario 4: an injected delay perturbs the receiver's simulated clock
/// by exactly the injected amount under a zero-cost network.
#[test]
fn delay_advances_the_simulated_clock() {
    let plan = FaultPlan::new(4).delay_messages(Some(0), Some(1), 2.25, 1.0, 0.0, FOREVER, 1);
    let (out, report) = Universe::new(2).with_faults(plan).run_report(|c| {
        if c.rank() == 0 {
            c.send(1, 9, &[0]);
        } else {
            c.recv(0, 9);
        }
        c.clock()
    });
    assert_eq!(out[0].value, 0.0);
    assert!(
        (out[1].value - 2.25).abs() < 1e-12,
        "clock = {}",
        out[1].value
    );
    assert_eq!(out[1].stats.delays_seen, 1);
    assert!(
        report.to_string().contains("held 2.250000s in flight"),
        "{}",
        report
    );
}

/// Scenario 5: an injected slowdown inflates a rank's compute charges
/// inside its window and nowhere else.
#[test]
fn slowdown_inflates_compute_inside_window() {
    let plan = FaultPlan::new(5).slow_rank(1, 3.0, 0.0, 10.0);
    let (out, report) = Universe::new(2).with_faults(plan).run_report(|c| {
        c.advance_compute(1.0);
        c.clock()
    });
    assert_eq!(out[0].value, 1.0);
    assert!((out[1].value - 3.0).abs() < 1e-12);
    assert!((out[1].stats.slowdown_time - 2.0).abs() < 1e-12);
    assert!(
        report.to_string().contains("compute charged at 3x"),
        "{}",
        report
    );
}

/// Scenario 6: an injected rank crash surfaces as a recoverable value
/// through `run_try`, naming the rank and its simulated time of death.
#[test]
fn injected_crash_is_recoverable_via_run_try() {
    let plan = FaultPlan::new(6).crash_rank(1, 0.5);
    let result = Universe::new(2).with_faults(plan).run_try(|c| {
        c.advance_compute(1.0);
        c.rank()
    });
    let notice = result.expect_err("rank 1 must crash");
    assert_eq!(notice.rank, 1);
    assert!(notice.sim_time >= 0.5);
    assert!(notice
        .to_string()
        .contains("rank 1 killed by injected crash"));
}

/// Scenario 7: through the plain `run` surface an injected crash panics
/// with a named diagnosis — again no timeout involved.
#[test]
#[should_panic(expected = "rank 1 killed by injected crash")]
fn injected_crash_panics_by_name_through_run() {
    let plan = FaultPlan::new(7).crash_rank(1, 0.0);
    Universe::new(2).with_faults(plan).run(|c| {
        c.advance_compute(1.0);
    });
}

/// Scenario 8: a peer blocked on a crashed rank is diagnosed (the crash is
/// the preferred root cause even though the peer also dies).
#[test]
fn peer_blocked_on_crashed_rank_fails_fast() {
    let plan = FaultPlan::new(8).crash_rank(1, 0.5);
    let result = Universe::new(2).with_faults(plan).run_try(|c| {
        if c.rank() == 1 {
            c.advance_compute(1.0); // dies here
            c.send(0, 3, &[1]);
        }
        c.recv(1, 3) // rank 0 blocks on a message that never comes
    });
    let notice = result.expect_err("crash must win over the secondary casualty");
    assert_eq!(notice.rank, 1);
}

/// Scenario 9: faults planted inside a collective phase (allreduce traffic
/// uses the reserved tag namespace) are survived and the reduction is
/// still exact.
#[test]
fn collective_phase_drops_are_survived_exactly() {
    let plan = FaultPlan::new(9).drop_messages(ANY, ANY, 1.0, 0.0, FOREVER, 2);
    let (out, _) = Universe::new(4).with_faults(plan).run_report(|c| {
        let local = (c.rank() + 1) as f64;
        c.allreduce_f64_sum(local)
    });
    assert!(out.iter().all(|o| o.value == 10.0));
    let total_drops: u64 = out.iter().map(|o| o.stats.drops_seen).sum();
    assert!(total_drops > 0, "the plan must actually have fired");
}

/// Scenario 10: a random mix of drops, corruptions and delays across a
/// barrage of p2p + collective traffic is survived with exact results.
#[test]
fn mixed_fault_barrage_is_survived() {
    let plan = FaultPlan::new(10)
        .with_max_retries(8)
        .drop_messages(ANY, ANY, 0.2, 0.0, FOREVER, u64::MAX)
        .corrupt_messages(ANY, ANY, 0.15, 0.0, FOREVER, u64::MAX)
        .delay_messages(ANY, ANY, 0.01, 0.1, 0.0, FOREVER, u64::MAX);
    let (out, report) = Universe::new(4)
        .with_cost(CostParams::fdr())
        .with_faults(plan)
        .run_report(|c| {
            let mut acc = 0u64;
            for round in 0..8 {
                acc += c.allreduce_u64_sum(c.rank() as u64 + round);
                let peer = c.rank() ^ 1;
                let got = c.sendrecv(peer, 11, &[c.rank() as u8]);
                acc += u64::from(got[0]);
            }
            c.barrier();
            acc
        });
    // Exactness: every rank computed the same allreduce sums and swapped
    // the right bytes, faults notwithstanding.
    let expect: u64 = (0..8u64).map(|r| 4 * r + 6).sum();
    assert_eq!(out[0].value, expect + 8); // rank 0's peer is rank 1
    assert_eq!(out[1].value, expect); // rank 1's peer is rank 0
    let faults: u64 = out.iter().map(|o| o.stats.transport_faults()).sum();
    assert!(faults > 0, "the barrage must have injected something");
    assert!(!report.faults.is_empty());
}

/// Satellite (d): seed determinism sweep — the same `FaultPlan` seed must
/// produce byte-identical validation reports and identical per-rank stats
/// across consecutive runs; different seeds must differ somewhere.
#[test]
fn identical_seeds_give_byte_identical_reports() {
    let run_once = |seed: u64| {
        let plan = FaultPlan::new(seed)
            .with_max_retries(8)
            .drop_messages(ANY, ANY, 0.25, 0.0, FOREVER, u64::MAX)
            .delay_messages(ANY, ANY, 0.005, 0.25, 0.0, FOREVER, u64::MAX);
        let (out, report) = Universe::new(3)
            .with_cost(CostParams::fdr())
            .with_faults(plan)
            .validated()
            .run_report(|c| {
                let mut acc = c.allreduce_f64_sum(c.rank() as f64);
                for _ in 0..4 {
                    acc = c.allreduce_f64_sum(acc) / 3.0;
                    c.barrier();
                }
                acc
            });
        let stats: Vec<_> = out.iter().map(|o| o.stats).collect();
        (report.to_string(), stats)
    };
    let mut ledgers = Vec::new();
    for seed in [11u64, 12, 13] {
        let (report_a, stats_a) = run_once(seed);
        let (report_b, stats_b) = run_once(seed);
        assert_eq!(
            report_a, report_b,
            "seed {seed}: reports must be byte-identical"
        );
        assert_eq!(stats_a, stats_b, "seed {seed}: stats must be identical");
        ledgers.push(report_a);
    }
    assert!(
        ledgers[0] != ledgers[1] || ledgers[1] != ledgers[2],
        "different seeds should perturb the fault sequence"
    );
}

/// Satellite (a): the liveness timeout is configurable and fires with a
/// named diagnosis when a peer is stuck in (wall-clock) compute that the
/// wait-for graph cannot see.
#[test]
#[should_panic(expected = "liveness timeout")]
fn liveness_timeout_is_configurable_and_fires() {
    Universe::new(2)
        .with_liveness_timeout(Duration::from_millis(60))
        .run(|c| {
            if c.rank() == 1 {
                // allow-wall-clock: a real-time stall is the very thing
                // this test injects — busy in host time without blocking,
                // invisible to the wait-for graph, so only the liveness
                // bound can fire.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(Duration::from_millis(400));
                c.send(0, 2, &[1]);
                vec![]
            } else {
                c.recv(1, 2)
            }
        });
}

/// Satellite (a): the environment variable override is honored.
#[test]
fn liveness_timeout_env_override_is_honored() {
    std::env::set_var(shrinksvm_mpisim::LIVENESS_TIMEOUT_ENV, "7");
    let u = Universe::new(1);
    std::env::remove_var(shrinksvm_mpisim::LIVENESS_TIMEOUT_ENV);
    assert_eq!(u.liveness_timeout(), Duration::from_secs(7));
    assert_eq!(
        Universe::new(1).liveness_timeout(),
        shrinksvm_mpisim::DEFAULT_LIVENESS_TIMEOUT
    );
}

/// A fault plan survives serialization: text-roundtripped plans inject the
/// exact same fault sequence.
#[test]
fn roundtripped_plan_behaves_identically() {
    let plan = FaultPlan::new(21)
        .drop_messages(ANY, ANY, 0.5, 0.0, FOREVER, u64::MAX)
        .with_max_retries(9);
    let copy = FaultPlan::from_text(&plan.to_text()).expect("roundtrip parses");
    let run_with = |p: FaultPlan| {
        let (out, report) = Universe::new(2).with_faults(p).run_report(|c| {
            if c.rank() == 0 {
                for i in 0..16 {
                    c.send(1, 1, &[i]);
                }
                0
            } else {
                (0..16).map(|_| c.recv(0, 1)[0] as u64).sum::<u64>()
            }
        });
        (out[1].value, out[1].stats, report.to_string())
    };
    assert_eq!(run_with(plan), run_with(copy));
}

/// Faults do not corrupt results even under validation: the full
/// correctness machinery (vector clocks, ledger, conservation) stays
/// clean across a survived fault schedule.
#[test]
fn survived_faults_leave_validation_clean() {
    let plan = FaultPlan::new(22)
        .drop_messages(ANY, ANY, 0.3, 0.0, FOREVER, u64::MAX)
        .with_max_retries(8);
    let (out, report) = Universe::new(4)
        .with_faults(plan)
        .validated()
        .run_report(|c| {
            let v = c.allreduce_u64_sum(1);
            c.barrier();
            v
        });
    assert!(report.is_clean(), "{report}");
    assert!(out.iter().all(|o| o.value == 4));
}

/// Fault events render on a dedicated Chrome-trace track (`tid = tracks +
/// rank`), labeled via thread-name metadata, so Perfetto shows the fault
/// timeline above the rank's compute/comm spans instead of interleaved
/// with them. Regular spans stay on `tid = rank`.
#[test]
fn fault_events_get_a_dedicated_chrome_trace_track() {
    let plan = FaultPlan::new(31).drop_messages(Some(0), Some(1), 1.0, 0.0, FOREVER, 1);
    let (out, _, tl, _) = Universe::new(2)
        .with_faults(plan)
        .with_tracing()
        .run_try_observed(|c| {
            if c.rank() == 0 {
                c.advance_compute(1e-3);
                c.send(1, 5, &[9, 9, 9]);
                vec![]
            } else {
                c.recv(0, 5)
            }
        })
        .expect("single drop is survivable");
    assert_eq!(out[1].value, vec![9, 9, 9]);
    assert_eq!(out[1].stats.retries, 1);

    let json = tl.to_chrome_json();
    // Rank 1 saw the drop: its fault track is tid = tracks + rank = 3,
    // named in the metadata, and both the ledger projection and the
    // retransmit instant live there with cat "fault".
    assert!(
        json.contains("\"tid\":3,\"args\":{\"name\":\"rank 1 faults\"}"),
        "{json}"
    );
    for fault_evt in ["drop(src=0)", "retransmit"] {
        let evt = json
            .split('{')
            .find(|chunk| chunk.contains(fault_evt))
            .unwrap_or_else(|| panic!("no {fault_evt} event in {json}"));
        assert!(evt.contains("\"cat\":\"fault\""), "{evt}");
        assert!(evt.contains("\"tid\":3"), "{evt}");
    }
    // Rank 0 had no faults: no metadata row for its fault track, and its
    // compute span stays on the plain rank track tid = 0.
    assert!(!json.contains("rank 0 faults"), "{json}");
    let compute = json
        .split('{')
        .find(|chunk| chunk.contains("\"compute\"") && chunk.contains("\"ph\":\"X\""))
        .expect("compute span present");
    assert!(compute.contains("\"tid\":0"), "{compute}");
}
