//! Per-rank activity counters.

/// Counters a rank accumulates over its lifetime. Returned alongside the
/// closure result by [`crate::Universe::run`] so harnesses can report
/// message counts, volumes and the compute/communication time split.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent (collective-internal traffic included).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Allreduce operations completed.
    pub allreduces: u64,
    /// Broadcast operations completed.
    pub bcasts: u64,
    /// Barriers completed.
    pub barriers: u64,
    /// Simulated seconds charged as computation.
    pub compute_time: f64,
    /// Simulated seconds this rank's clock advanced while waiting on
    /// messages (communication + idle/imbalance time).
    pub comm_time: f64,
}

impl CommStats {
    /// Merge another rank's counters into this one (for fleet summaries).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.allreduces += other.allreduces;
        self.bcasts += other.bcasts;
        self.barriers += other.barriers;
        self.compute_time += other.compute_time;
        self.comm_time += other.comm_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
            allreduces: 3,
            bcasts: 4,
            barriers: 5,
            compute_time: 0.5,
            comm_time: 0.25,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.msgs_sent, 2);
        assert_eq!(a.bytes_recv, 40);
        assert_eq!(a.barriers, 10);
        assert!((a.compute_time - 1.0).abs() < 1e-15);
    }
}
