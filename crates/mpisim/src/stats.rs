//! Per-rank activity counters.

/// Counters a rank accumulates over its lifetime. Returned alongside the
/// closure result by [`crate::Universe::run`] so harnesses can report
/// message counts, volumes and the compute/communication time split.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent (collective-internal traffic included).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Allreduce operations completed.
    pub allreduces: u64,
    /// Broadcast operations completed.
    pub bcasts: u64,
    /// Barriers completed.
    pub barriers: u64,
    /// Nonblocking collectives initiated (`iallreduce_*` / `ibcast`).
    pub icolls: u64,
    /// Simulated seconds spent blocked in [`crate::Comm::coll_wait`] on a
    /// nonblocking collective that had not finished yet — the *unhidden*
    /// residue of overlapped communication. Counted inside
    /// `transfer_time` as well; this field just names the overlap share.
    pub overlap_wait: f64,
    /// Simulated seconds of in-flight collective time that compute fully
    /// covered — communication the overlap pipeline hid from the clock.
    pub overlap_covered: f64,
    /// Simulated seconds charged as computation.
    pub compute_time: f64,
    /// Simulated seconds the clock advanced covering wire transfer —
    /// latency + bytes·G + injected in-flight penalties — of matched
    /// messages. The bandwidth/latency share of waiting.
    pub transfer_time: f64,
    /// Simulated seconds the clock advanced while the matching message had
    /// not even departed yet — waiting on a slower peer. The
    /// load-imbalance share of waiting.
    pub idle_time: f64,
    /// Retransmissions this rank's transport performed after an injected
    /// drop or corruption.
    pub retries: u64,
    /// Injected message drops this rank observed (as the receiver).
    pub drops_seen: u64,
    /// Injected payload corruptions this rank detected via checksum.
    pub corruptions_seen: u64,
    /// Injected message delays this rank absorbed.
    pub delays_seen: u64,
    /// Simulated seconds spent on retransmission backoff.
    pub retry_time: f64,
    /// Extra simulated compute seconds charged by injected slowdowns.
    pub slowdown_time: f64,
}

impl CommStats {
    /// Merge another rank's counters into this one (for fleet summaries).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.allreduces += other.allreduces;
        self.bcasts += other.bcasts;
        self.barriers += other.barriers;
        self.icolls += other.icolls;
        self.overlap_wait += other.overlap_wait;
        self.overlap_covered += other.overlap_covered;
        self.compute_time += other.compute_time;
        self.transfer_time += other.transfer_time;
        self.idle_time += other.idle_time;
        self.retries += other.retries;
        self.drops_seen += other.drops_seen;
        self.corruptions_seen += other.corruptions_seen;
        self.delays_seen += other.delays_seen;
        self.retry_time += other.retry_time;
        self.slowdown_time += other.slowdown_time;
    }

    /// Total injected transport faults this rank survived (drops detected,
    /// corruptions caught, delays absorbed).
    pub fn transport_faults(&self) -> u64 {
        self.drops_seen + self.corruptions_seen + self.delays_seen
    }

    /// Total simulated seconds this rank's clock advanced while waiting on
    /// messages: wire transfer plus peer-imbalance idle time.
    pub fn comm_time(&self) -> f64 {
        self.transfer_time + self.idle_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
            allreduces: 3,
            bcasts: 4,
            barriers: 5,
            icolls: 7,
            overlap_wait: 0.25,
            overlap_covered: 0.5,
            compute_time: 0.5,
            transfer_time: 0.1875,
            idle_time: 0.0625,
            retries: 6,
            drops_seen: 2,
            corruptions_seen: 1,
            delays_seen: 3,
            retry_time: 0.125,
            slowdown_time: 0.0625,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.msgs_sent, 2);
        assert_eq!(a.bytes_recv, 40);
        assert_eq!(a.barriers, 10);
        assert_eq!(a.icolls, 14);
        assert!((a.overlap_wait - 0.5).abs() < 1e-15);
        assert!((a.overlap_covered - 1.0).abs() < 1e-15);
        assert!((a.compute_time - 1.0).abs() < 1e-15);
        assert!((a.transfer_time - 0.375).abs() < 1e-15);
        assert!((a.idle_time - 0.125).abs() < 1e-15);
        assert!((a.comm_time() - 0.5).abs() < 1e-15);
        assert_eq!(a.retries, 12);
        assert_eq!(a.transport_faults(), 12);
        assert!((a.retry_time - 0.25).abs() < 1e-15);
        assert!((a.slowdown_time - 0.125).abs() < 1e-15);
    }
}
