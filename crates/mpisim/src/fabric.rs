//! The channel fabric connecting ranks.

use std::sync::mpsc::{channel as unbounded, Receiver, Sender};

use shrinksvm_analyze::VectorClock;

/// One in-flight message.
#[derive(Debug)]
pub(crate) struct Message {
    /// Matching tag (point-to-point namespace or collective namespace).
    pub tag: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Sender's simulated clock at departure (after send overhead).
    pub depart: f64,
    /// Sender's vector clock at departure; present only under validation.
    pub vclock: Option<VectorClock>,
    /// FNV-1a checksum of the payload, stamped at send time and verified
    /// at receive time: injected corruption is detected, not silent.
    pub checksum: u64,
    /// Sender's per-destination sequence number — the deterministic key
    /// that fault rules are coined on.
    pub link_seq: u64,
    /// Extra in-flight simulated seconds accumulated by injected delays
    /// and retransmission backoff; written by the receiving transport when
    /// the message is dequeued, folded into the arrival clock when it is
    /// matched.
    pub penalty: f64,
}

/// All channel endpoints belonging to one rank: a sender handle towards
/// every rank and a receiver handle from every rank.
pub(crate) struct Endpoints {
    pub outgoing: Vec<Sender<Message>>,
    pub incoming: Vec<Receiver<Message>>,
}

/// Build a fully-connected fabric of `p` ranks.
///
/// Returns one [`Endpoints`] per rank. `endpoints[q].outgoing[r]` feeds
/// `endpoints[r].incoming[q]`; a rank may also send to itself (used by
/// degenerate collectives), since the channels are buffered.
pub(crate) fn build(p: usize) -> Vec<Endpoints> {
    assert!(p >= 1, "need at least one rank");
    // senders[src][dst], receivers[dst][src]
    let mut senders: Vec<Vec<Option<Sender<Message>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Message>>>> =
        (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
    for src in 0..p {
        for dst in 0..p {
            let (tx, rx) = unbounded();
            senders[src][dst] = Some(tx);
            receivers[dst][src] = Some(rx);
        }
    }
    senders
        .into_iter()
        .zip(receivers)
        .map(|(out_row, in_row)| Endpoints {
            outgoing: out_row.into_iter().map(|s| s.unwrap()).collect(),
            incoming: in_row.into_iter().map(|r| r.unwrap()).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_wires_src_to_dst() {
        let mut eps = build(3);
        // rank 0 -> rank 2
        eps[0].outgoing[2]
            .send(Message {
                tag: 7,
                payload: vec![1, 2, 3],
                depart: 0.5,
                vclock: None,
                checksum: 0,
                link_seq: 0,
                penalty: 0.0,
            })
            .unwrap();
        let got = eps[2].incoming[0].recv().unwrap();
        assert_eq!(got.tag, 7);
        assert_eq!(got.payload, vec![1, 2, 3]);
        assert_eq!(got.depart, 0.5);
        // nothing arrived anywhere else
        assert!(eps[1].incoming[0].try_recv().is_err());
        assert!(eps[2].incoming[1].try_recv().is_err());
        let _ = &mut eps;
    }

    #[test]
    fn self_send_works() {
        let eps = build(1);
        eps[0].outgoing[0]
            .send(Message {
                tag: 1,
                payload: vec![],
                depart: 0.0,
                vclock: None,
                checksum: 0,
                link_seq: 0,
                penalty: 0.0,
            })
            .unwrap();
        assert!(eps[0].incoming[0].recv().is_ok());
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        build(0);
    }
}
