//! Deterministic fault injection: the [`FaultPlan`].
//!
//! A plan is a seeded, serializable schedule of faults installed on a
//! universe via [`crate::Universe::with_faults`]. Two rule families exist:
//!
//! * **Link rules** perturb messages in flight — drop a copy (the
//!   transport retransmits with exponential backoff), corrupt the payload
//!   (detected by the envelope checksum, then retransmitted), or delay
//!   delivery. Whether a rule fires on a given transmission attempt is a
//!   pure function of `(seed, rule, src, dst, link sequence, attempt)`, so
//!   the injected fault sequence is byte-identical across runs no matter
//!   how the OS schedules the rank threads.
//! * **Rank rules** perturb a rank itself — kill it when its simulated
//!   clock reaches a deadline, or multiply its compute charges inside a
//!   simulated-time window.
//! * **Checkpoint rules** corrupt promoted checkpoint generations by
//!   global promote-sequence window, so a driver's verified-restore
//!   fallback path (skip the corrupt generation, restore an older one)
//!   is exercised deterministically.
//!
//! Faults are keyed on *simulated* LogGP time (message departure clocks,
//! rank clocks), never on wall-clock time: a plan that crashes rank 3 at
//! `t = 0.5 s` does so at the same iteration on every machine.

use std::fmt;

/// How a link rule perturbs a matching message copy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFault {
    /// The copy is lost in flight; the transport retransmits after a
    /// backoff, up to the plan's retry budget.
    Drop,
    /// The copy arrives with corrupted payload bytes; the envelope
    /// checksum catches it and the transport retransmits.
    Corrupt,
    /// The copy is held in flight for `secs` extra simulated seconds.
    Delay {
        /// Extra in-flight seconds.
        secs: f64,
    },
}

/// A seeded rule perturbing messages on matching links.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkRule {
    /// The perturbation.
    pub fault: LinkFault,
    /// Sending-rank filter (`None` = any source).
    pub src: Option<usize>,
    /// Receiving-rank filter (`None` = any destination).
    pub dst: Option<usize>,
    /// Simulated-time window `[from, until)` tested against the message's
    /// departure clock.
    pub from: f64,
    /// Window end (exclusive); `f64::INFINITY` for open-ended.
    pub until: f64,
    /// Per-attempt firing probability in `[0, 1]`.
    pub probability: f64,
    /// Maximum times this rule fires **per link** (deterministic because
    /// each link's traffic is consumed by exactly one receiver, in FIFO
    /// order). `u64::MAX` for unlimited.
    pub count: u64,
}

/// How a rank rule perturbs a rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RankFault {
    /// Kill the rank when its simulated clock reaches the rule's `from`.
    Crash,
    /// Multiply the rank's compute charges by `factor` while its clock is
    /// inside `[from, until)`.
    Slow {
        /// Compute-time multiplier (`> 1` slows the rank down).
        factor: f64,
    },
}

/// A rule perturbing one rank, keyed on its simulated clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankRule {
    /// The perturbation.
    pub fault: RankFault,
    /// The affected rank.
    pub rank: usize,
    /// Crash deadline, or slowdown window start.
    pub from: f64,
    /// Slowdown window end (exclusive); ignored by crashes.
    pub until: f64,
}

/// A rule corrupting promoted checkpoint generations: every generation
/// whose global promote sequence number falls in `[from, until)` gets one
/// byte of its serialized cut flipped *after* the store computed its
/// checksum, so restore-time verification detects the damage and the
/// recovery ladder must fall back to an older generation (or a cold
/// start). Sequence numbers are deterministic (they count promotions in
/// order), so the injected corruption is byte-identical across runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CkptRule {
    /// First corrupted promote-sequence number.
    pub from: u64,
    /// Window end (exclusive); `u64::MAX` for open-ended.
    pub until: u64,
}

/// Default retry budget: one original transmission plus this many
/// retransmissions before a message is declared permanently lost.
pub const DEFAULT_MAX_RETRIES: u32 = 4;

/// Default first-retransmission backoff in simulated seconds; attempt `k`
/// waits `backoff · 2^(k−1)`.
pub const DEFAULT_RETRY_BACKOFF: f64 = 1e-4;

/// A deterministic, serializable fault schedule.
///
/// ```
/// use shrinksvm_mpisim::{FaultPlan, Universe};
///
/// let plan = FaultPlan::new(7).drop_messages(Some(0), Some(1), 1.0, 0.0, f64::INFINITY, 1);
/// let out = Universe::new(2).with_faults(plan).run(|c| {
///     if c.rank() == 0 {
///         c.send(1, 5, &[1, 2, 3]);
///         vec![]
///     } else {
///         c.recv(0, 5) // first copy is dropped; the retransmission lands
///     }
/// });
/// assert_eq!(out[1].value, vec![1, 2, 3]);
/// assert_eq!(out[1].stats.retries, 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    link_rules: Vec<LinkRule>,
    rank_rules: Vec<RankRule>,
    ckpt_rules: Vec<CkptRule>,
    /// Rank rules already consumed by a recovery (a crashed node does not
    /// crash again after the driver replaces it).
    disarmed: Vec<bool>,
    max_retries: u32,
    retry_backoff: f64,
}

/// What the transport should do with one transmission attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Fate {
    /// Deliver the copy untouched.
    Deliver,
    /// This copy was lost in flight.
    Lost,
    /// This copy arrives with corrupted payload bytes.
    Corrupted,
    /// This copy is held for the given extra simulated seconds.
    Delayed(f64),
}

/// Panic payload of an injected rank crash. The universe recognizes this
/// payload and reports the crash as a value ([`crate::Universe::run_try`])
/// instead of unwinding, so a driver can recover.
#[derive(Clone, Copy, Debug)]
pub struct CrashNotice {
    /// The crashed rank.
    pub rank: usize,
    /// The rank's simulated clock at death.
    pub sim_time: f64,
    /// Index of the [`RankRule`] that fired (for disarming on recovery).
    pub rule: usize,
}

impl fmt::Display for CrashNotice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} killed by injected crash at simulated time {:.6}s (rule {})",
            self.rank, self.sim_time, self.rule
        )
    }
}

/// SplitMix64 finalizer — the same mixer the datagen RNG seeds through.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic coin in `[0, 1)` from a key tuple.
fn coin(seed: u64, rule: u64, src: u64, dst: u64, link_seq: u64, attempt: u64) -> f64 {
    let mut h = mix(seed ^ 0xC5A7_1D4E_9F03_B621);
    for k in [rule, src, dst, link_seq, attempt] {
        h = mix(h ^ k);
    }
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            link_rules: Vec::new(),
            rank_rules: Vec::new(),
            ckpt_rules: Vec::new(),
            disarmed: Vec::new(),
            max_retries: DEFAULT_MAX_RETRIES,
            retry_backoff: DEFAULT_RETRY_BACKOFF,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Retry budget (retransmissions after the original copy).
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// First-retransmission backoff in simulated seconds.
    pub fn retry_backoff(&self) -> f64 {
        self.retry_backoff
    }

    /// Set the retry budget.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Set the first-retransmission backoff (doubles per further attempt).
    pub fn with_retry_backoff(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "backoff must be finite");
        self.retry_backoff = secs;
        self
    }

    fn push_link(mut self, rule: LinkRule) -> Self {
        assert!(
            (0.0..=1.0).contains(&rule.probability),
            "probability out of range"
        );
        assert!(rule.from <= rule.until, "empty fault window");
        self.link_rules.push(rule);
        self
    }

    fn push_rank(mut self, rule: RankRule) -> Self {
        self.rank_rules.push(rule);
        self.disarmed.push(false);
        self
    }

    /// Drop matching message copies with `probability` per attempt, at most
    /// `count` times per link, for departures in `[from, until)`.
    pub fn drop_messages(
        self,
        src: Option<usize>,
        dst: Option<usize>,
        probability: f64,
        from: f64,
        until: f64,
        count: u64,
    ) -> Self {
        self.push_link(LinkRule {
            fault: LinkFault::Drop,
            src,
            dst,
            from,
            until,
            probability,
            count,
        })
    }

    /// Corrupt matching message copies (checksum-detectable) with
    /// `probability` per attempt, at most `count` times per link.
    pub fn corrupt_messages(
        self,
        src: Option<usize>,
        dst: Option<usize>,
        probability: f64,
        from: f64,
        until: f64,
        count: u64,
    ) -> Self {
        self.push_link(LinkRule {
            fault: LinkFault::Corrupt,
            src,
            dst,
            from,
            until,
            probability,
            count,
        })
    }

    /// Delay matching messages by `secs` simulated seconds with
    /// `probability`, at most `count` times per link.
    // mirrors drop_messages/corrupt_messages plus the delay amount
    #[allow(clippy::too_many_arguments)]
    pub fn delay_messages(
        self,
        src: Option<usize>,
        dst: Option<usize>,
        secs: f64,
        probability: f64,
        from: f64,
        until: f64,
        count: u64,
    ) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "delay must be finite");
        self.push_link(LinkRule {
            fault: LinkFault::Delay { secs },
            src,
            dst,
            from,
            until,
            probability,
            count,
        })
    }

    /// Kill `rank` when its simulated clock reaches `at` seconds.
    pub fn crash_rank(self, rank: usize, at: f64) -> Self {
        assert!(at >= 0.0, "crash deadline must be nonnegative");
        self.push_rank(RankRule {
            fault: RankFault::Crash,
            rank,
            from: at,
            until: f64::INFINITY,
        })
    }

    /// Multiply `rank`'s compute charges by `factor` while its clock is in
    /// `[from, until)`.
    pub fn slow_rank(self, rank: usize, factor: f64, from: f64, until: f64) -> Self {
        assert!(factor >= 1.0 && factor.is_finite(), "factor must be >= 1");
        self.push_rank(RankRule {
            fault: RankFault::Slow { factor },
            rank,
            from,
            until,
        })
    }

    /// Corrupt every promoted checkpoint generation whose global promote
    /// sequence number lies in `[from, until)` — one byte of the
    /// serialized cut is flipped after checksumming, so a verifying
    /// restore detects it and falls back.
    pub fn corrupt_checkpoints(mut self, from: u64, until: u64) -> Self {
        assert!(from < until, "empty checkpoint-corruption window");
        self.ckpt_rules.push(CkptRule { from, until });
        self
    }

    /// Number of link rules.
    pub fn n_link_rules(&self) -> usize {
        self.link_rules.len()
    }

    /// Number of rank rules.
    pub fn n_rank_rules(&self) -> usize {
        self.rank_rules.len()
    }

    /// Number of checkpoint-corruption rules.
    pub fn n_ckpt_rules(&self) -> usize {
        self.ckpt_rules.len()
    }

    /// The checkpoint-corruption windows, for a store to plant.
    pub fn checkpoint_corruption_windows(&self) -> Vec<(u64, u64)> {
        self.ckpt_rules.iter().map(|r| (r.from, r.until)).collect()
    }

    /// Total rules across all families, in the unified order link → rank
    /// → checkpoint (the index space [`FaultPlan::without_rule`] uses).
    pub fn rules_len(&self) -> usize {
        self.link_rules.len() + self.rank_rules.len() + self.ckpt_rules.len()
    }

    /// A copy of this plan with the `idx`-th rule (unified order: link
    /// rules, then rank rules, then checkpoint rules) removed — the
    /// primitive a delta-debugging shrinker minimizes over. Removing a
    /// rule shifts later rule indices (and therefore their fate coins),
    /// but every candidate plan is still fully deterministic on its own.
    ///
    /// # Panics
    ///
    /// Panics when `idx >= rules_len()`.
    pub fn without_rule(&self, idx: usize) -> FaultPlan {
        assert!(idx < self.rules_len(), "rule index {idx} out of range");
        let mut plan = self.clone();
        if idx < plan.link_rules.len() {
            plan.link_rules.remove(idx);
            return plan;
        }
        let idx = idx - plan.link_rules.len();
        if idx < plan.rank_rules.len() {
            plan.rank_rules.remove(idx);
            plan.disarmed.remove(idx);
            return plan;
        }
        let idx = idx - plan.rank_rules.len();
        plan.ckpt_rules.remove(idx);
        plan
    }

    /// Disarm a rank rule that already fired (recovery replaced the node):
    /// it will not fire again on subsequent runs of this plan.
    pub fn disarm_rank_rule(&mut self, idx: usize) {
        if let Some(d) = self.disarmed.get_mut(idx) {
            *d = true;
        }
    }

    /// Decide the fate of one transmission attempt. `hits` is the
    /// receiver's per-`(rule, src)` injection counter backing the per-link
    /// `count` budget; the first matching rule that wins its coin fires.
    // the mix key is exactly these coordinates; bundling them would only
    // rename the problem
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fate(
        &self,
        src: usize,
        dst: usize,
        depart: f64,
        link_seq: u64,
        attempt: u32,
        hits: &mut [u64],
        p: usize,
    ) -> Fate {
        for (idx, rule) in self.link_rules.iter().enumerate() {
            if rule.src.is_some_and(|s| s != src) || rule.dst.is_some_and(|d| d != dst) {
                continue;
            }
            if depart < rule.from || depart >= rule.until {
                continue;
            }
            let slot = idx * p + src;
            if hits[slot] >= rule.count {
                continue;
            }
            let c = coin(
                self.seed,
                idx as u64,
                src as u64,
                dst as u64,
                link_seq,
                u64::from(attempt),
            );
            if c >= rule.probability {
                continue;
            }
            hits[slot] += 1;
            return match rule.fault {
                LinkFault::Drop => Fate::Lost,
                LinkFault::Corrupt => Fate::Corrupted,
                LinkFault::Delay { secs } => Fate::Delayed(secs),
            };
        }
        Fate::Deliver
    }

    /// The armed crash rule (if any) due on `rank` at simulated `clock`.
    pub(crate) fn crash_due(&self, rank: usize, clock: f64) -> Option<(usize, f64)> {
        self.rank_rules
            .iter()
            .enumerate()
            .find(|(idx, r)| {
                !self.disarmed[*idx]
                    && r.rank == rank
                    && matches!(r.fault, RankFault::Crash)
                    && clock >= r.from
            })
            .map(|(idx, r)| (idx, r.from))
    }

    /// Product of active slowdown factors for `rank` at `clock`, with the
    /// index of the first matching rule (for one-shot ledger records).
    pub(crate) fn slow_factor(&self, rank: usize, clock: f64) -> Option<(usize, f64)> {
        let mut first = None;
        let mut factor = 1.0;
        for (idx, r) in self.rank_rules.iter().enumerate() {
            if let RankFault::Slow { factor: f } = r.fault {
                if r.rank == rank && clock >= r.from && clock < r.until {
                    factor *= f;
                    first.get_or_insert(idx);
                }
            }
        }
        first.map(|idx| (idx, factor))
    }

    // --------------------------------------------------------- persistence

    /// Serialize to the plan's versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("shrinksvm-faultplan v1\n");
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!(
            "retry max {} backoff {:e}\n",
            self.max_retries, self.retry_backoff
        ));
        let opt = |r: Option<usize>| r.map_or("*".to_string(), |v| v.to_string());
        for r in &self.link_rules {
            let kind = match r.fault {
                LinkFault::Drop => "drop".to_string(),
                LinkFault::Corrupt => "corrupt".to_string(),
                LinkFault::Delay { secs } => format!("delay {secs:e}"),
            };
            out.push_str(&format!(
                "link {kind} src {} dst {} from {:e} until {:e} p {:e} count {}\n",
                opt(r.src),
                opt(r.dst),
                r.from,
                r.until,
                r.probability,
                r.count
            ));
        }
        for r in &self.ckpt_rules {
            out.push_str(&format!("ckpt corrupt from {} until {}\n", r.from, r.until));
        }
        for (idx, r) in self.rank_rules.iter().enumerate() {
            let armed = if self.disarmed[idx] { " disarmed" } else { "" };
            match r.fault {
                RankFault::Crash => {
                    out.push_str(&format!("rank crash {} at {:e}{armed}\n", r.rank, r.from));
                }
                RankFault::Slow { factor } => out.push_str(&format!(
                    "rank slow {} factor {:e} from {:e} until {:e}{armed}\n",
                    r.rank, factor, r.from, r.until
                )),
            }
        }
        out
    }

    /// Parse the text format produced by [`FaultPlan::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty fault plan")?;
        if header.trim() != "shrinksvm-faultplan v1" {
            return Err(format!("bad fault-plan header '{header}'"));
        }
        let pf = |s: &str| -> Result<f64, String> {
            s.parse::<f64>().map_err(|_| format!("bad float '{s}'"))
        };
        let pu = |s: &str| -> Result<u64, String> {
            s.parse::<u64>().map_err(|_| format!("bad integer '{s}'"))
        };
        let prank = |s: &str| -> Result<Option<usize>, String> {
            if s == "*" {
                Ok(None)
            } else {
                s.parse::<usize>()
                    .map(Some)
                    .map_err(|_| format!("bad rank '{s}'"))
            }
        };
        let mut plan = FaultPlan::new(0);
        for line in lines {
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks.as_slice() {
                [] => {}
                ["seed", s] => plan.seed = pu(s)?,
                ["retry", "max", m, "backoff", b] => {
                    plan.max_retries = pu(m)? as u32;
                    plan.retry_backoff = pf(b)?;
                }
                ["link", kind @ ("drop" | "corrupt"), "src", s, "dst", d, "from", f, "until", u, "p", p, "count", c] =>
                {
                    plan.link_rules.push(LinkRule {
                        fault: if *kind == "drop" {
                            LinkFault::Drop
                        } else {
                            LinkFault::Corrupt
                        },
                        src: prank(s)?,
                        dst: prank(d)?,
                        from: pf(f)?,
                        until: pf(u)?,
                        probability: pf(p)?,
                        count: pu(c)?,
                    });
                }
                ["link", "delay", secs, "src", s, "dst", d, "from", f, "until", u, "p", p, "count", c] =>
                {
                    plan.link_rules.push(LinkRule {
                        fault: LinkFault::Delay { secs: pf(secs)? },
                        src: prank(s)?,
                        dst: prank(d)?,
                        from: pf(f)?,
                        until: pf(u)?,
                        probability: pf(p)?,
                        count: pu(c)?,
                    });
                }
                ["ckpt", "corrupt", "from", f, "until", u] => {
                    let (from, until) = (pu(f)?, pu(u)?);
                    if from >= until {
                        return Err(format!("empty checkpoint-corruption window '{line}'"));
                    }
                    plan.ckpt_rules.push(CkptRule { from, until });
                }
                ["rank", "crash", r, "at", at, rest @ ..] => {
                    plan.rank_rules.push(RankRule {
                        fault: RankFault::Crash,
                        rank: pu(r)? as usize,
                        from: pf(at)?,
                        until: f64::INFINITY,
                    });
                    plan.disarmed.push(rest == ["disarmed"]);
                }
                ["rank", "slow", r, "factor", fac, "from", f, "until", u, rest @ ..] => {
                    plan.rank_rules.push(RankRule {
                        fault: RankFault::Slow { factor: pf(fac)? },
                        rank: pu(r)? as usize,
                        from: pf(f)?,
                        until: pf(u)?,
                    });
                    plan.disarmed.push(rest == ["disarmed"]);
                }
                _ => return Err(format!("bad fault-plan line '{line}'")),
            }
        }
        Ok(plan)
    }
}

/// FNV-1a 64-bit checksum over a payload — the envelope integrity check
/// that makes injected corruption *detectable* rather than silent. Public
/// because the checkpoint store verifies its serialized cuts with the
/// same checksum (one integrity primitive across the stack).
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministically corrupt a payload copy (flip one byte picked from the
/// sequence key; an empty payload corrupts by appending a byte, which the
/// length-sensitive checksum still catches). The key is a link sequence
/// for in-flight corruption and a promote sequence for checkpoint
/// corruption — either way the damage is a pure function of its inputs.
pub fn corrupt_copy(payload: &[u8], link_seq: u64) -> Vec<u8> {
    let mut copy = payload.to_vec();
    if copy.is_empty() {
        copy.push(0xA5);
    } else {
        let pos = (mix(link_seq) as usize) % copy.len();
        copy[pos] ^= 0xFF;
    }
    copy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_text_roundtrips() {
        let mut plan = FaultPlan::new(42)
            .with_max_retries(7)
            .with_retry_backoff(2e-3)
            .drop_messages(Some(0), Some(1), 1.0, 0.0, f64::INFINITY, 1)
            .corrupt_messages(None, None, 0.25, 0.5, 2.0, u64::MAX)
            .delay_messages(Some(2), None, 0.125, 0.5, 0.0, 1.0, 3)
            .crash_rank(3, 0.75)
            .slow_rank(1, 4.0, 0.0, 10.0)
            .corrupt_checkpoints(2, u64::MAX);
        plan.disarm_rank_rule(0);
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).unwrap();
        assert_eq!(back, plan);
        // and the round-tripped plan serializes identically
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(FaultPlan::from_text("").is_err());
        assert!(FaultPlan::from_text("faultplan v0\n").is_err());
        assert!(FaultPlan::from_text("shrinksvm-faultplan v1\nlink warp 1\n").is_err());
        assert!(FaultPlan::from_text("shrinksvm-faultplan v1\nseed banana\n").is_err());
    }

    #[test]
    fn fate_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(9).drop_messages(None, None, 0.5, 0.0, f64::INFINITY, u64::MAX);
        let p = 4;
        let run = |plan: &FaultPlan| -> Vec<Fate> {
            let mut hits = vec![0u64; plan.n_link_rules() * p];
            (0..64)
                .map(|seq| plan.fate(0, 1, 0.0, seq, 0, &mut hits, p))
                .collect()
        };
        assert_eq!(run(&plan), run(&plan));
        let other = FaultPlan::new(10).drop_messages(None, None, 0.5, 0.0, f64::INFINITY, u64::MAX);
        assert_ne!(run(&plan), run(&other), "different seeds, different faults");
        let lost = run(&plan).iter().filter(|f| **f == Fate::Lost).count();
        assert!((8..56).contains(&lost), "p=0.5 should drop roughly half");
    }

    #[test]
    fn count_budget_limits_per_link_firings() {
        let plan = FaultPlan::new(1).drop_messages(Some(0), Some(1), 1.0, 0.0, f64::INFINITY, 2);
        let p = 2;
        let mut hits = vec![0u64; p];
        let fates: Vec<Fate> = (0..5)
            .map(|s| plan.fate(0, 1, 0.0, s, 0, &mut hits, p))
            .collect();
        assert_eq!(fates[..2], [Fate::Lost, Fate::Lost]);
        assert!(fates[2..].iter().all(|f| *f == Fate::Deliver));
    }

    #[test]
    fn window_gates_on_depart_time() {
        let plan = FaultPlan::new(1).drop_messages(None, None, 1.0, 1.0, 2.0, u64::MAX);
        let mut hits = vec![0u64; 2];
        assert_eq!(plan.fate(0, 1, 0.5, 0, 0, &mut hits, 2), Fate::Deliver);
        assert_eq!(plan.fate(0, 1, 1.5, 1, 0, &mut hits, 2), Fate::Lost);
        assert_eq!(plan.fate(0, 1, 2.0, 2, 0, &mut hits, 2), Fate::Deliver);
    }

    #[test]
    fn crash_due_honors_deadline_and_disarm() {
        let mut plan = FaultPlan::new(1).crash_rank(2, 1.5);
        assert_eq!(plan.crash_due(2, 1.0), None);
        assert_eq!(plan.crash_due(2, 1.5), Some((0, 1.5)));
        assert_eq!(plan.crash_due(1, 99.0), None);
        plan.disarm_rank_rule(0);
        assert_eq!(plan.crash_due(2, 99.0), None);
    }

    #[test]
    fn slow_factor_multiplies_in_window() {
        let plan = FaultPlan::new(1)
            .slow_rank(0, 2.0, 0.0, 10.0)
            .slow_rank(0, 3.0, 5.0, 10.0);
        assert_eq!(plan.slow_factor(0, 1.0), Some((0, 2.0)));
        assert_eq!(plan.slow_factor(0, 6.0), Some((0, 6.0)));
        assert_eq!(plan.slow_factor(0, 10.0), None);
        assert_eq!(plan.slow_factor(1, 1.0), None);
    }

    #[test]
    fn ckpt_rules_roundtrip_and_report_windows() {
        let plan = FaultPlan::new(3)
            .corrupt_checkpoints(1, 4)
            .corrupt_checkpoints(9, u64::MAX);
        assert_eq!(plan.n_ckpt_rules(), 2);
        assert_eq!(
            plan.checkpoint_corruption_windows(),
            vec![(1, 4), (9, u64::MAX)]
        );
        let back = FaultPlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(back, plan);
        assert!(
            FaultPlan::from_text("shrinksvm-faultplan v1\nckpt corrupt from 4 until 4\n").is_err()
        );
    }

    #[test]
    fn without_rule_spans_the_unified_index_space() {
        let plan = FaultPlan::new(5)
            .drop_messages(Some(0), Some(1), 1.0, 0.0, f64::INFINITY, 1)
            .crash_rank(2, 0.5)
            .crash_rank(1, 0.75)
            .corrupt_checkpoints(2, 6);
        assert_eq!(plan.rules_len(), 4);
        // removing the link rule leaves both crashes and the ckpt rule
        let a = plan.without_rule(0);
        assert_eq!(
            (a.n_link_rules(), a.n_rank_rules(), a.n_ckpt_rules()),
            (0, 2, 1)
        );
        // removing a rank rule keeps the disarm flags aligned
        let mut armed = plan.clone();
        armed.disarm_rank_rule(0);
        let b = armed.without_rule(1);
        assert_eq!(b.n_rank_rules(), 1);
        assert_eq!(b.crash_due(1, 1.0), Some((0, 0.75)));
        assert_eq!(b.crash_due(2, 1.0), None, "the disarmed crash was removed");
        // removing the last index removes the ckpt rule
        let c = plan.without_rule(3);
        assert_eq!(c.n_ckpt_rules(), 0);
    }

    #[test]
    fn checksum_catches_corruption() {
        let payload = vec![1u8, 2, 3, 4];
        let ck = checksum(&payload);
        let bad = corrupt_copy(&payload, 17);
        assert_ne!(checksum(&bad), ck);
        // empty payloads corrupt detectably too
        let ck0 = checksum(&[]);
        assert_ne!(checksum(&corrupt_copy(&[], 0)), ck0);
    }
}
