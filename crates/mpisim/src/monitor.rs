//! The per-universe run monitor: shared state behind the deadlock
//! detector, the collective lockstep checker and the validation report.
//!
//! One `RunMonitor` is created per [`crate::Universe::run`] call and shared
//! (via `Arc`) by every rank. The wait-for graph is always maintained — it
//! replaces the old 300-second timeout as the deadlock oracle — while the
//! happens-before/ledger machinery only engages when the universe was built
//! with [`crate::Universe::validated`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use shrinksvm_analyze::{
    CollectiveLedger, FaultEvent, Fingerprint, RankState, ValidationReport, Violation, WaitEdge,
    WaitForGraph,
};

/// Lock a mutex, surviving poisoning (a diagnosing rank panics on purpose;
/// that must not cascade into opaque `PoisonError` panics on its peers).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Snapshot a rank uses to decide whether the universe has stopped moving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct StallSnapshot {
    graph_version: u64,
    progress: u64,
}

/// Shared monitor state for one universe run.
pub(crate) struct RunMonitor {
    /// Whether full validation (vector clocks, ledger, conservation) is on.
    pub validate: bool,
    graph: Mutex<WaitForGraph>,
    /// Total messages dequeued from any channel; part of the stall check.
    progress: AtomicU64,
    /// The deadlock diagnosis, rendered once by whichever rank confirms it.
    diagnosed: Mutex<Option<String>>,
    /// Ranks that unwound with a panic (distinguished from clean finishes
    /// in the deadlock report so the root cause is not masked).
    panicked: Mutex<Vec<usize>>,
    ledger: Mutex<CollectiveLedger>,
    violations: Mutex<Vec<Violation>>,
    /// Fault-injection ledger: every injected fault and transport recovery
    /// action, when a fault plan is installed.
    faults: Mutex<Vec<FaultEvent>>,
}

impl RunMonitor {
    pub(crate) fn new(p: usize, validate: bool) -> Self {
        RunMonitor {
            validate,
            graph: Mutex::new(WaitForGraph::new(p)),
            progress: AtomicU64::new(0),
            diagnosed: Mutex::new(None),
            panicked: Mutex::new(Vec::new()),
            ledger: Mutex::new(CollectiveLedger::new(p)),
            violations: Mutex::new(Vec::new()),
            faults: Mutex::new(Vec::new()),
        }
    }

    /// A message was dequeued somewhere (matched or buffered).
    pub(crate) fn note_progress(&self) {
        self.progress.fetch_add(1, Ordering::SeqCst);
    }

    /// Rank `rank` is blocked in a receive.
    pub(crate) fn publish_blocked(&self, edge: WaitEdge) {
        lock(&self.graph).set(edge.waiter, RankState::Blocked(edge));
    }

    /// Rank `rank` matched its receive and is running again.
    pub(crate) fn publish_running(&self, rank: usize) {
        lock(&self.graph).set(rank, RankState::Running);
    }

    /// Rank `rank` returned from its closure (or unwound with a panic —
    /// either way, no further message from it can ever arrive).
    pub(crate) fn publish_finished(&self, rank: usize, by_panic: bool) {
        if by_panic {
            lock(&self.panicked).push(rank);
        }
        lock(&self.graph).set(rank, RankState::Finished);
    }

    /// Called by a blocked rank after each poll timeout. Returns the
    /// rendered deadlock report once the universe is provably stuck.
    ///
    /// `last` is the caller's previous snapshot. Diagnosis requires two
    /// consecutive observations, one poll interval apart, of the *same*
    /// fully-blocked state with no message dequeued in between: any
    /// deliverable in-flight message would have been picked up within one
    /// poll by its (blocked, hence actively polling) receiver, changing the
    /// progress counter and invalidating the snapshot.
    pub(crate) fn check_stalled(
        &self,
        last: Option<StallSnapshot>,
    ) -> Result<Option<StallSnapshot>, String> {
        if let Some(report) = lock(&self.diagnosed).as_ref() {
            return Err(report.clone());
        }
        let (all_blocked, graph_version) = {
            let g = lock(&self.graph);
            (g.all_blocked(), g.version())
        };
        if !all_blocked {
            return Ok(None);
        }
        let snap = StallSnapshot {
            graph_version,
            progress: self.progress.load(Ordering::SeqCst),
        };
        if last != Some(snap) {
            return Ok(Some(snap));
        }
        // Confirmed: render the diagnosis exactly once.
        let mut diagnosed = lock(&self.diagnosed);
        if let Some(report) = diagnosed.as_ref() {
            return Err(report.clone());
        }
        let mut report = lock(&self.graph).deadlock_report().to_string();
        let panicked = lock(&self.panicked);
        for rank in panicked.iter() {
            report.push_str(&format!(
                "note: rank {rank} exited by panic before the deadlock; \
                 its panic is the likely root cause\n"
            ));
        }
        *diagnosed = Some(report.clone());
        Err(report)
    }

    /// The first rank that unwound with a panic, if any did.
    pub(crate) fn first_panicked(&self) -> Option<usize> {
        lock(&self.panicked).first().copied()
    }

    /// Post a collective fingerprint; panics with the divergence diagnosis
    /// if this rank's collective sequence has diverged from the fleet's.
    pub(crate) fn post_collective(&self, rank: usize, seq: u64, fp: Fingerprint) {
        let result = lock(&self.ledger).post(rank, seq, fp);
        if let Err(divergence) = result {
            panic!("{divergence}");
        }
    }

    /// Record a validation violation.
    pub(crate) fn record(&self, v: Violation) {
        lock(&self.violations).push(v);
    }

    /// Record a fault-injection ledger entry.
    pub(crate) fn record_fault(&self, e: FaultEvent) {
        lock(&self.faults).push(e);
    }

    /// Drain everything recorded so far into a report (post-join). The
    /// report is normalized so identical fault seeds render byte-identical
    /// text regardless of thread scheduling.
    pub(crate) fn take_report(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        report.extend(std::mem::take(&mut *lock(&self.violations)));
        report.extend_faults(std::mem::take(&mut *lock(&self.faults)));
        report.normalize();
        report
    }
}
