//! Collective operations, built from the point-to-point layer with the same
//! algorithms an MPI implementation uses — so their `O(log p)` critical
//! paths show up in the simulated clocks for free.

use shrinksvm_analyze::{CollectiveKind, Fingerprint};

use crate::comm::{CollRequest, Comm};
use crate::reduce::{MaxLoc, MinLoc};

/// Collective tags live above the user namespace: bit 63 set, then the
/// per-rank collective sequence number shifted past a 16-bit sub-round
/// field. All ranks execute collectives in the same (SPMD) order, so
/// sequence numbers agree and neither consecutive collectives nor rounds
/// within one collective can cross-match.
const COLL_BASE: u64 = 1 << 63;

fn coll_tag(seq: u64) -> u64 {
    COLL_BASE | (seq << 16)
}

impl Comm {
    /// Allocate this collective's tag and, under validation, post its
    /// fingerprint to the lockstep ledger — which panics with a divergence
    /// diagnosis if this rank's collective sequence no longer matches the
    /// fleet's.
    fn coll_enter(&mut self, kind: CollectiveKind, root: Option<usize>) -> u64 {
        let seq = self.bump_coll_seq();
        if self.monitor().validate {
            let rank = self.rank();
            self.monitor()
                .post_collective(rank, seq, Fingerprint { kind, root });
        }
        coll_tag(seq)
    }

    /// Record a `[t0, now]` span for a finished collective on this rank's
    /// timeline track, plus its interval in the dependency log so
    /// critical-path hops inside it carry the collective's name (both
    /// no-ops unless the universe traces).
    fn coll_exit(&mut self, name: &'static str, t0: f64) {
        let t1 = self.clock();
        self.trace_span(name, "coll", t0, t1);
        self.dep_coll(name, t0, t1);
    }

    /// Dissemination barrier: `⌈log₂ p⌉` rounds of shifted exchanges.
    pub fn barrier(&mut self) {
        let t0 = self.clock();
        self.barrier_inner();
        self.coll_exit("barrier", t0);
    }

    fn barrier_inner(&mut self) {
        let p = self.size();
        let rank = self.rank();
        let tag = self.coll_enter(CollectiveKind::Barrier, None);
        let mut dist = 1;
        let mut round = 0u64;
        while dist < p {
            let to = (rank + dist) % p;
            let from = (rank + p - dist) % p;
            self.send_internal(to, tag | round, &[]);
            self.recv_internal(from, tag | round);
            dist <<= 1;
            round += 1;
        }
        self.note_barrier();
    }

    /// Binomial-tree broadcast from `root`. `data` is the payload on the
    /// root and ignored elsewhere; every rank returns the payload.
    pub fn bcast(&mut self, root: usize, data: &[u8]) -> Vec<u8> {
        let t0 = self.clock();
        let out = self.bcast_inner(root, data);
        self.coll_exit("bcast", t0);
        out
    }

    fn bcast_inner(&mut self, root: usize, data: &[u8]) -> Vec<u8> {
        let p = self.size();
        let rank = self.rank();
        let tag = self.coll_enter(CollectiveKind::Bcast, Some(root));
        self.note_bcast();
        if p == 1 {
            return data.to_vec();
        }
        let relative = (rank + p - root) % p;
        let mut buf: Option<Vec<u8>> = if relative == 0 {
            Some(data.to_vec())
        } else {
            None
        };
        // Receive phase: find the highest set bit at which we hang off the tree.
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let src = (rank + p - mask) % p;
                buf = Some(self.recv_internal(src, tag));
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward down the subtree.
        let payload = buf.expect("bcast payload reached this rank");
        let mut m = mask >> 1;
        while m > 0 {
            if relative + m < p {
                let dst = (rank + m) % p;
                self.send_internal(dst, tag, &payload);
            }
            m >>= 1;
        }
        payload
    }

    /// Generic allreduce over opaque fixed-meaning payloads, using
    /// recursive doubling with the standard fold for non-power-of-two rank
    /// counts. `combine` must be associative and commutative.
    pub fn allreduce_with<F>(&mut self, mine: Vec<u8>, combine: F) -> Vec<u8>
    where
        F: Fn(&[u8], &[u8]) -> Vec<u8>,
    {
        let t0 = self.clock();
        let out = self.allreduce_with_inner(mine, combine);
        self.coll_exit("allreduce", t0);
        out
    }

    fn allreduce_with_inner<F>(&mut self, mine: Vec<u8>, combine: F) -> Vec<u8>
    where
        F: Fn(&[u8], &[u8]) -> Vec<u8>,
    {
        let p = self.size();
        let rank = self.rank();
        let tag = self.coll_enter(CollectiveKind::Allreduce, None);
        self.note_allreduce();
        if p == 1 {
            return mine;
        }
        let pof2 = if p.is_power_of_two() {
            p
        } else {
            p.next_power_of_two() >> 1
        };
        let rem = p - pof2;
        let mut acc = mine;

        // Phase 1: fold the first 2·rem ranks pairwise so pof2 ranks remain.
        let newrank: Option<usize> = if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                self.send_internal(rank + 1, tag, &acc);
                None
            } else {
                let theirs = self.recv_internal(rank - 1, tag);
                acc = combine(&acc, &theirs);
                Some(rank / 2)
            }
        } else {
            Some(rank - rem)
        };

        // Phase 2: recursive doubling among the pof2 survivors.
        if let Some(nr) = newrank {
            let mut mask = 1usize;
            while mask < pof2 {
                let partner_new = nr ^ mask;
                let partner = if partner_new < rem {
                    partner_new * 2 + 1
                } else {
                    partner_new + rem
                };
                self.send_internal(partner, tag, &acc);
                let theirs = self.recv_internal(partner, tag);
                acc = combine(&acc, &theirs);
                mask <<= 1;
            }
        }

        // Phase 3: hand results back to the folded-out ranks.
        if rank < 2 * rem {
            if rank.is_multiple_of(2) {
                acc = self.recv_internal(rank + 1, tag);
            } else {
                self.send_internal(rank - 1, tag, &acc);
            }
        }
        acc
    }

    /// Allreduce a single `f64` by summation.
    pub fn allreduce_f64_sum(&mut self, v: f64) -> f64 {
        self.allreduce_f64(v, |a, b| a + b)
    }

    /// Allreduce a single `f64` by minimum.
    pub fn allreduce_f64_min(&mut self, v: f64) -> f64 {
        self.allreduce_f64(v, f64::min)
    }

    /// Allreduce a single `f64` by maximum.
    pub fn allreduce_f64_max(&mut self, v: f64) -> f64 {
        self.allreduce_f64(v, f64::max)
    }

    fn allreduce_f64(&mut self, v: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        let out = self.allreduce_with(v.to_le_bytes().to_vec(), |a, b| {
            let fa = f64::from_le_bytes(a.try_into().unwrap());
            let fb = f64::from_le_bytes(b.try_into().unwrap());
            op(fa, fb).to_le_bytes().to_vec()
        });
        f64::from_le_bytes(out[..8].try_into().unwrap())
    }

    /// Allreduce a single `u64` by summation.
    pub fn allreduce_u64_sum(&mut self, v: u64) -> u64 {
        let out = self.allreduce_with(v.to_le_bytes().to_vec(), |a, b| {
            let fa = u64::from_le_bytes(a.try_into().unwrap());
            let fb = u64::from_le_bytes(b.try_into().unwrap());
            (fa + fb).to_le_bytes().to_vec()
        });
        u64::from_le_bytes(out[..8].try_into().unwrap())
    }

    /// Nonblocking generic allreduce (`MPI_Iallreduce` analog): initiate
    /// the collective and return a [`CollRequest`] whose payload becomes
    /// available at [`Comm::coll_wait`]. Compute charged between
    /// initiation and wait overlaps the collective — only the unhidden
    /// residue of its latency costs simulated time. The combine sequence
    /// is identical to [`Comm::allreduce_with`], so the result is bitwise
    /// equal to the blocking call's.
    pub fn iallreduce_with<F>(&mut self, mine: Vec<u8>, combine: F) -> CollRequest
    where
        F: Fn(&[u8], &[u8]) -> Vec<u8>,
    {
        let t0 = self.icoll_begin();
        let result = self.allreduce_with_inner(mine, combine);
        let done = self.icoll_end("iallreduce", t0);
        CollRequest::new(result, t0, done, "iallreduce")
    }

    /// Nonblocking broadcast from `root` (`MPI_Ibcast` analog); same
    /// initiation/wait semantics as [`Comm::iallreduce_with`].
    pub fn ibcast(&mut self, root: usize, data: &[u8]) -> CollRequest {
        let t0 = self.icoll_begin();
        let result = self.bcast_inner(root, data);
        let done = self.icoll_end("ibcast", t0);
        CollRequest::new(result, t0, done, "ibcast")
    }

    /// MINLOC allreduce: globally smallest value with its carried index.
    pub fn allreduce_minloc(&mut self, mine: MinLoc) -> MinLoc {
        let out = self.allreduce_with(mine.encode().to_vec(), |a, b| {
            MinLoc::combine(MinLoc::decode(a), MinLoc::decode(b))
                .encode()
                .to_vec()
        });
        MinLoc::decode(&out)
    }

    /// MAXLOC allreduce: globally largest value with its carried index.
    pub fn allreduce_maxloc(&mut self, mine: MaxLoc) -> MaxLoc {
        let out = self.allreduce_with(mine.encode().to_vec(), |a, b| {
            MaxLoc::combine(MaxLoc::decode(a), MaxLoc::decode(b))
                .encode()
                .to_vec()
        });
        MaxLoc::decode(&out)
    }

    /// Fused MINLOC+MAXLOC allreduce: both reductions in a single
    /// collective round over a packed 32-byte payload. The per-half
    /// combines are exactly [`MinLoc::combine`] / [`MaxLoc::combine`], so
    /// the results are bitwise identical to running
    /// [`Comm::allreduce_minloc`] then [`Comm::allreduce_maxloc`] — at
    /// half the rounds.
    pub fn allreduce_minloc_maxloc(&mut self, min: MinLoc, max: MaxLoc) -> (MinLoc, MaxLoc) {
        let out = self.allreduce_with(pack_minloc_maxloc(min, max), |a, b| {
            combine_minloc_maxloc(a, b)
        });
        unpack_minloc_maxloc(&out)
    }

    /// Nonblocking fused MINLOC+MAXLOC allreduce; decode the payload
    /// returned by [`Comm::coll_wait`] with [`decode_minloc_maxloc`].
    pub fn iallreduce_minloc_maxloc(&mut self, min: MinLoc, max: MaxLoc) -> CollRequest {
        self.iallreduce_with(pack_minloc_maxloc(min, max), |a, b| {
            combine_minloc_maxloc(a, b)
        })
    }

    /// Gather variable-sized payloads at `root` (binomial-tree merge).
    /// Returns `Some(payloads-by-rank)` on the root, `None` elsewhere.
    pub fn gatherv(&mut self, root: usize, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
        let t0 = self.clock();
        let out = self.gatherv_inner(root, mine);
        self.coll_exit("gatherv", t0);
        out
    }

    fn gatherv_inner(&mut self, root: usize, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
        let p = self.size();
        let rank = self.rank();
        let tag = self.coll_enter(CollectiveKind::Gatherv, Some(root));
        // Each message carries a set of (rank, payload) records.
        fn pack(records: &[(u32, Vec<u8>)]) -> Vec<u8> {
            let mut out = Vec::new();
            for (r, data) in records {
                out.extend_from_slice(&r.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            out
        }
        fn unpack(bytes: &[u8]) -> Vec<(u32, Vec<u8>)> {
            let mut out = Vec::new();
            let mut pos = 0;
            while pos < bytes.len() {
                let r = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
                let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
                out.push((r, bytes[pos + 8..pos + 8 + len].to_vec()));
                pos += 8 + len;
            }
            out
        }
        let relative = (rank + p - root) % p;
        let mut records = vec![(rank as u32, mine.to_vec())];
        // reverse binomial tree: leaves send up first
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                let dst = (rank + p - mask) % p;
                self.send_internal(dst, tag, &pack(&records));
                return None;
            }
            if relative + mask < p {
                let src = (rank + mask) % p;
                let bytes = self.recv_internal(src, tag);
                records.extend(unpack(&bytes));
            }
            mask <<= 1;
        }
        let mut by_rank: Vec<Vec<u8>> = vec![Vec::new(); p];
        for (r, data) in records {
            by_rank[r as usize] = data;
        }
        Some(by_rank)
    }

    /// Scatter per-rank payloads from `root` (binomial tree). `pieces` is
    /// read on the root only; every rank returns its own piece.
    pub fn scatterv(&mut self, root: usize, pieces: &[Vec<u8>]) -> Vec<u8> {
        let t0 = self.clock();
        let out = self.scatterv_inner(root, pieces);
        self.coll_exit("scatterv", t0);
        out
    }

    fn scatterv_inner(&mut self, root: usize, pieces: &[Vec<u8>]) -> Vec<u8> {
        let p = self.size();
        let rank = self.rank();
        let tag = self.coll_enter(CollectiveKind::Scatterv, Some(root));
        if p == 1 {
            return pieces.first().cloned().unwrap_or_default();
        }
        fn pack(records: &[(u32, &[u8])]) -> Vec<u8> {
            let mut out = Vec::new();
            for (r, data) in records {
                out.extend_from_slice(&r.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            out
        }
        fn unpack(bytes: &[u8]) -> Vec<(u32, Vec<u8>)> {
            let mut out = Vec::new();
            let mut pos = 0;
            while pos < bytes.len() {
                let r = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
                let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
                out.push((r, bytes[pos + 8..pos + 8 + len].to_vec()));
                pos += 8 + len;
            }
            out
        }
        let relative = (rank + p - root) % p;
        // Root starts holding everything; interior nodes receive their
        // subtree's records, keep their own, forward the rest downward.
        let mut held: Vec<(u32, Vec<u8>)> = if relative == 0 {
            assert!(pieces.len() >= p, "scatterv needs one piece per rank");
            (0..p).map(|r| (r as u32, pieces[r].clone())).collect()
        } else {
            let mut mask = 1usize;
            loop {
                if relative & mask != 0 {
                    let src = (rank + p - mask) % p;
                    let bytes = self.recv_internal(src, tag);
                    break unpack(&bytes);
                }
                mask <<= 1;
            }
        };
        // forward to children: child subtree roots are relative + m
        let mut mask = 1usize;
        while mask < p {
            if relative & mask != 0 {
                break;
            }
            mask <<= 1;
        }
        let mut m = mask >> 1;
        // for the root, mask walked past p; recompute top bit
        let mut top = 1usize;
        while top < p {
            top <<= 1;
        }
        if relative == 0 {
            m = top >> 1;
        }
        while m > 0 {
            if relative + m < p {
                let child_rel_lo = relative + m;
                let child_rel_hi = (relative + 2 * m).min(p);
                let dst = (rank + m) % p;
                let (send, keep): (Vec<_>, Vec<_>) = held.into_iter().partition(|(r, _)| {
                    let rel = (*r as usize + p - root) % p;
                    rel >= child_rel_lo && rel < child_rel_hi
                });
                held = keep;
                let refs: Vec<(u32, &[u8])> =
                    send.iter().map(|(r, d)| (*r, d.as_slice())).collect();
                self.send_internal(dst, tag, &pack(&refs));
            }
            m >>= 1;
        }
        debug_assert_eq!(held.len(), 1, "exactly own piece remains");
        held.pop().map(|(_, d)| d).unwrap_or_default()
    }

    /// Elementwise allreduce of an `f64` vector (`MPI_Allreduce` on an
    /// array with `MPI_SUM`).
    pub fn allreduce_f64_vec_sum(&mut self, mine: &[f64]) -> Vec<f64> {
        let bytes = crate::comm::encode_f64s(mine);
        let out = self.allreduce_with(bytes, |a, b| {
            let va = crate::comm::decode_f64s(a);
            let vb = crate::comm::decode_f64s(b);
            let sum: Vec<f64> = va.iter().zip(&vb).map(|(x, y)| x + y).collect();
            crate::comm::encode_f64s(&sum)
        });
        crate::comm::decode_f64s(&out)
    }

    /// Ring allgather of variable-sized payloads. Returns one payload per
    /// rank, indexed by rank.
    ///
    /// The paper (§IV-B2) explicitly *rejects* `MPI_Allgatherv` for gradient
    /// reconstruction because every rank would need a buffer holding the
    /// entire dataset at once; the reconstruction instead streams pieces
    /// around the ring ([`Comm::ring_shift`]) holding only one piece at a
    /// time. This method exists for completeness and for small payloads.
    pub fn allgatherv(&mut self, mine: &[u8]) -> Vec<Vec<u8>> {
        let t0 = self.clock();
        let out = self.allgatherv_inner(mine);
        self.coll_exit("allgatherv", t0);
        out
    }

    fn allgatherv_inner(&mut self, mine: &[u8]) -> Vec<Vec<u8>> {
        let p = self.size();
        let rank = self.rank();
        let tag = self.coll_enter(CollectiveKind::Allgatherv, None);
        let mut pieces: Vec<Vec<u8>> = vec![Vec::new(); p];
        pieces[rank] = mine.to_vec();
        if p == 1 {
            return pieces;
        }
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        let mut cur = mine.to_vec();
        for step in 1..p {
            self.send_internal(right, tag, &cur);
            cur = self.recv_internal(left, tag);
            pieces[(rank + p - step) % p] = cur.clone();
        }
        pieces
    }

    /// One step of a ring exchange: send `mine` to `(rank+1) % p`, receive
    /// from `(rank−1+p) % p` (implemented Isend/Irecv/Waitall, as the
    /// paper's gradient reconstruction does).
    pub fn ring_shift(&mut self, mine: &[u8]) -> Vec<u8> {
        let t0 = self.clock();
        let out = self.ring_shift_inner(mine);
        self.coll_exit("ring_shift", t0);
        out
    }

    fn ring_shift_inner(&mut self, mine: &[u8]) -> Vec<u8> {
        let p = self.size();
        if p == 1 {
            return mine.to_vec();
        }
        let tag = self.coll_enter(CollectiveKind::RingShift, None);
        let rank = self.rank();
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        // Isend/Irecv/Waitall as in Algorithm 3's implementation note.
        self.send_internal(right, tag, mine);
        self.recv_internal(left, tag)
    }
}

/// Pack a `(MinLoc, MaxLoc)` pair into the fused allreduce's 32-byte
/// payload: the MINLOC half first, the MAXLOC half second.
fn pack_minloc_maxloc(min: MinLoc, max: MaxLoc) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.extend_from_slice(&min.encode());
    buf.extend_from_slice(&max.encode());
    buf
}

/// Combine two packed `(MinLoc, MaxLoc)` payloads half by half.
fn combine_minloc_maxloc(a: &[u8], b: &[u8]) -> Vec<u8> {
    let min = MinLoc::combine(MinLoc::decode(&a[..16]), MinLoc::decode(&b[..16]));
    let max = MaxLoc::combine(MaxLoc::decode(&a[16..]), MaxLoc::decode(&b[16..]));
    pack_minloc_maxloc(min, max)
}

fn unpack_minloc_maxloc(bytes: &[u8]) -> (MinLoc, MaxLoc) {
    assert_eq!(bytes.len(), 32, "fused minloc/maxloc payload is 32 bytes");
    (MinLoc::decode(&bytes[..16]), MaxLoc::decode(&bytes[16..]))
}

/// Decode the payload a fused [`Comm::iallreduce_minloc_maxloc`] request
/// hands back from [`Comm::coll_wait`].
pub fn decode_minloc_maxloc(bytes: &[u8]) -> (MinLoc, MaxLoc) {
    unpack_minloc_maxloc(bytes)
}

#[cfg(test)]
mod tests {
    use super::decode_minloc_maxloc;
    use crate::reduce::{MaxLoc, MinLoc};
    use crate::universe::Universe;
    use crate::CostParams;

    fn sum_combine(a: &[u8], b: &[u8]) -> Vec<u8> {
        let fa = f64::from_le_bytes(a.try_into().unwrap());
        let fb = f64::from_le_bytes(b.try_into().unwrap());
        (fa + fb).to_le_bytes().to_vec()
    }

    #[test]
    fn iallreduce_matches_blocking_bit_for_bit() {
        for p in 1..=6 {
            let blocking = Universe::new(p).run(|c| c.allreduce_f64_sum((c.rank() + 1) as f64));
            let overlapped = Universe::new(p).run(|c| {
                let mine = ((c.rank() + 1) as f64).to_le_bytes().to_vec();
                let req = c.iallreduce_with(mine, sum_combine);
                c.advance_compute(0.125);
                let out = c.coll_wait(req);
                f64::from_le_bytes(out[..8].try_into().unwrap())
            });
            for (a, b) in blocking.iter().zip(&overlapped) {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "p={p}");
            }
        }
    }

    #[test]
    fn overlapped_compute_hides_collective_latency() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.0,
            send_overhead: 0.0,
        };
        let blocking = Universe::new(4).with_cost(cost).run(|c| {
            c.allreduce_f64_sum(1.0);
            c.advance_compute(10.0);
            c.clock()
        });
        let overlapped = Universe::new(4).with_cost(cost).run(|c| {
            let req = c.iallreduce_with(1.0f64.to_le_bytes().to_vec(), sum_combine);
            c.advance_compute(10.0);
            c.coll_wait(req);
            (c.clock(), c.stats())
        });
        for (b, o) in blocking.iter().zip(&overlapped) {
            let (clock, stats) = o.value;
            // 10s of compute fully covers the ~2 latency-bound rounds.
            assert_eq!(clock, 10.0);
            assert!(
                clock < b.value,
                "overlap must beat blocking ({clock} vs {})",
                b.value
            );
            assert_eq!(stats.icolls, 1);
            assert_eq!(stats.overlap_wait, 0.0);
            assert!(stats.overlap_covered > 0.0);
            assert_eq!(stats.idle_time, 0.0);
        }
    }

    #[test]
    fn unhidden_wait_residue_clamps_to_the_blocking_clock() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.0,
            send_overhead: 0.0,
        };
        let blocking = Universe::new(4).with_cost(cost).run(|c| {
            c.allreduce_f64_sum(1.0);
            c.clock()
        });
        // No compute between initiation and wait: the whole collective
        // latency is unhidden residue and the clock lands exactly where
        // the blocking call would have put it.
        let overlapped = Universe::new(4).with_cost(cost).run(|c| {
            let req = c.iallreduce_with(1.0f64.to_le_bytes().to_vec(), sum_combine);
            let done = req.done();
            c.coll_wait(req);
            (c.clock(), done, c.stats())
        });
        for (b, o) in blocking.iter().zip(&overlapped) {
            let (clock, done, stats) = o.value;
            assert_eq!(clock.to_bits(), b.value.to_bits());
            assert_eq!(clock.to_bits(), done.to_bits());
            assert_eq!(stats.overlap_covered, 0.0);
            assert!((stats.overlap_wait - done).abs() < 1e-12, "posted at 0");
            assert!((stats.transfer_time - done).abs() < 1e-12);
        }
    }

    #[test]
    fn ibcast_delivers_the_root_payload() {
        let out = Universe::new(5).run(|c| {
            let data = if c.rank() == 2 { vec![7, 8, 9] } else { vec![] };
            let req = c.ibcast(2, &data);
            c.advance_compute(0.5);
            c.coll_wait(req)
        });
        for o in &out {
            assert_eq!(o.value, vec![7, 8, 9]);
        }
    }

    #[test]
    fn fused_minloc_maxloc_matches_separate_rounds() {
        let values = [5.0, 1.0, 3.0, 1.0, 9.0, 0.5];
        let out = Universe::new(values.len()).run(move |c| {
            let min = MinLoc {
                value: values[c.rank()],
                index: c.rank() as u64,
            };
            let max = MaxLoc {
                value: values[c.rank()],
                index: c.rank() as u64,
            };
            let sep = (c.allreduce_minloc(min), c.allreduce_maxloc(max));
            let fused = c.allreduce_minloc_maxloc(min, max);
            (sep, fused, c.stats().allreduces)
        });
        for o in &out {
            assert_eq!(o.value.0 .0, o.value.1 .0);
            assert_eq!(o.value.0 .1, o.value.1 .1);
            // two separate rounds plus ONE fused round
            assert_eq!(o.value.2, 3);
        }
    }

    #[test]
    fn nonblocking_fused_minloc_maxloc_roundtrips() {
        let out = Universe::new(4).run(|c| {
            let min = MinLoc {
                value: -(c.rank() as f64),
                index: c.rank() as u64,
            };
            let max = MaxLoc {
                value: c.rank() as f64,
                index: c.rank() as u64,
            };
            let req = c.iallreduce_minloc_maxloc(min, max);
            c.advance_compute(0.25);
            decode_minloc_maxloc(&c.coll_wait(req))
        });
        for o in &out {
            assert_eq!(
                o.value.0,
                MinLoc {
                    value: -3.0,
                    index: 3
                }
            );
            assert_eq!(
                o.value.1,
                MaxLoc {
                    value: 3.0,
                    index: 3
                }
            );
        }
    }

    #[test]
    fn overlapped_traced_run_replays_bit_exactly() {
        use shrinksvm_obs::PerfDoctor;
        let cost = CostParams {
            latency: 1e-3,
            gap_per_byte: 1e-6,
            send_overhead: 1e-4,
        };
        let (outcomes, _report, _timeline, deps) = Universe::new(4)
            .with_cost(cost)
            .with_tracing()
            .run_try_observed(|c| {
                // a mix of hidden and unhidden waits plus ordinary traffic
                let r1 = c.iallreduce_with(1.0f64.to_le_bytes().to_vec(), sum_combine);
                c.advance_compute(5e-3);
                c.coll_wait(r1);
                let r2 = c.iallreduce_with(2.0f64.to_le_bytes().to_vec(), sum_combine);
                c.coll_wait(r2);
                c.allreduce_f64_sum(3.0);
                let req = c.ibcast(0, &[c.rank() as u8]);
                c.advance_compute(1e-5);
                c.coll_wait(req);
                c.clock()
            })
            .expect("no faults installed");
        let doc = PerfDoctor::analyze(&deps, 0.0).expect("bit-exact replay + attribution");
        let makespan = outcomes.iter().map(|o| o.value).fold(0.0f64, f64::max);
        assert_eq!(doc.makespan.to_bits(), makespan.to_bits());
        // the wait residue must reconcile: per-rank buckets sum to the
        // makespan even with virtual windows in the log
        for b in &doc.attribution.per_rank {
            assert!((b.total() - doc.makespan).abs() <= 1e-9 * doc.makespan);
        }
    }

    #[test]
    fn bcast_from_every_root_and_size() {
        for p in 1..=9 {
            for root in 0..p {
                let out = Universe::new(p).run(move |c| {
                    let payload: Vec<u8> = vec![root as u8, 42, 7];
                    let data = if c.rank() == root {
                        payload.clone()
                    } else {
                        vec![]
                    };
                    c.bcast(root, &data)
                });
                for o in &out {
                    assert_eq!(o.value, vec![root as u8, 42, 7], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for p in 1..=10 {
            let out = Universe::new(p).run(|c| c.allreduce_f64_sum((c.rank() + 1) as f64));
            let expect = (p * (p + 1) / 2) as f64;
            for o in &out {
                assert_eq!(o.value, expect, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = Universe::new(7).run(|c| {
            let v = (c.rank() as f64 - 3.0).abs();
            (c.allreduce_f64_min(v), c.allreduce_f64_max(v))
        });
        for o in &out {
            assert_eq!(o.value, (0.0, 3.0));
        }
    }

    #[test]
    fn allreduce_u64_sum_works() {
        let out = Universe::new(5).run(|c| c.allreduce_u64_sum(c.rank() as u64 * 10));
        for o in &out {
            assert_eq!(o.value, 100);
        }
    }

    #[test]
    fn minloc_and_maxloc_agree_across_ranks() {
        let values = [5.0, 1.0, 3.0, 1.0, 9.0, 0.5];
        let out = Universe::new(values.len()).run(move |c| {
            let mine = MinLoc {
                value: values[c.rank()],
                index: c.rank() as u64,
            };
            let maxmine = MaxLoc {
                value: values[c.rank()],
                index: c.rank() as u64,
            };
            (c.allreduce_minloc(mine), c.allreduce_maxloc(maxmine))
        });
        for o in &out {
            assert_eq!(
                o.value.0,
                MinLoc {
                    value: 0.5,
                    index: 5
                }
            );
            assert_eq!(
                o.value.1,
                MaxLoc {
                    value: 9.0,
                    index: 4
                }
            );
        }
    }

    #[test]
    fn minloc_tie_breaks_identically_everywhere() {
        let out = Universe::new(4).run(|c| {
            let mine = MinLoc {
                value: 1.0,
                index: c.rank() as u64,
            };
            c.allreduce_minloc(mine)
        });
        for o in &out {
            assert_eq!(o.value.index, 0);
        }
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.0,
            send_overhead: 0.0,
        };
        let out = Universe::new(4).with_cost(cost).run(|c| {
            if c.rank() == 2 {
                c.advance_compute(100.0);
            }
            c.barrier();
            c.clock()
        });
        // after a barrier nobody's clock can be below the slowest rank's
        for o in &out {
            assert!(o.value >= 100.0, "clock {} not synced", o.value);
        }
    }

    #[test]
    fn allgatherv_collects_in_rank_order() {
        for p in 1..=6 {
            let out = Universe::new(p).run(|c| {
                let mine = vec![c.rank() as u8; c.rank() + 1];
                c.allgatherv(&mine)
            });
            for o in &out {
                for (r, piece) in o.value.iter().enumerate() {
                    assert_eq!(piece, &vec![r as u8; r + 1], "p={p}");
                }
            }
        }
    }

    #[test]
    fn ring_shift_rotates_by_one() {
        let out = Universe::new(5).run(|c| {
            let mine = vec![c.rank() as u8];
            c.ring_shift(&mine)
        });
        for (r, o) in out.iter().enumerate() {
            assert_eq!(o.value, vec![((r + 5 - 1) % 5) as u8]);
        }
    }

    #[test]
    fn ring_shift_p1_is_identity() {
        let out = Universe::new(1).run(|c| c.ring_shift(&[7, 8]));
        assert_eq!(out[0].value, vec![7, 8]);
    }

    #[test]
    fn full_ring_circulates_everything() {
        // p-1 shifts return each piece to its origin having visited everyone.
        let p = 6;
        let out = Universe::new(p).run(move |c| {
            let mut seen = vec![c.rank()];
            let mut cur = vec![c.rank() as u8];
            for _ in 0..p - 1 {
                cur = c.ring_shift(&cur);
                seen.push(cur[0] as usize);
            }
            seen.sort_unstable();
            seen
        });
        for o in &out {
            assert_eq!(o.value, (0..p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn allreduce_clock_grows_logarithmically() {
        // With latency-only costs, allreduce time should grow roughly like
        // log2(p), not like p.
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.0,
            send_overhead: 0.0,
        };
        let time_at = |p: usize| {
            let out = Universe::new(p).with_cost(cost).run(|c| {
                c.allreduce_f64_sum(1.0);
                c.clock()
            });
            out.iter().map(|o| o.value).fold(0.0f64, f64::max)
        };
        let t4 = time_at(4);
        let t16 = time_at(16);
        assert!(t4 >= 2.0 - 1e-9); // at least log2(4) rounds
        assert!(t16 <= t4 * 3.0, "t16={t16} t4={t4} — should be ~2x, not 4x");
    }

    #[test]
    fn consecutive_collectives_do_not_cross_match() {
        let out = Universe::new(3).run(|c| {
            let a = c.allreduce_f64_sum(1.0);
            let b = c.allreduce_f64_sum(10.0);
            let d = c.bcast(0, &[c.rank() as u8]);
            (a, b, d)
        });
        for o in &out {
            assert_eq!(o.value.0, 3.0);
            assert_eq!(o.value.1, 30.0);
            assert_eq!(o.value.2, vec![0]);
        }
    }

    #[test]
    fn gatherv_collects_at_every_root() {
        for p in 1..=9 {
            for root in 0..p {
                let out = Universe::new(p).run(move |c| {
                    let mine = vec![c.rank() as u8; c.rank() + 1];
                    c.gatherv(root, &mine)
                });
                for (r, o) in out.iter().enumerate() {
                    if r == root {
                        let pieces = o.value.as_ref().expect("root gets data");
                        for (q, piece) in pieces.iter().enumerate() {
                            assert_eq!(piece, &vec![q as u8; q + 1], "p={p} root={root}");
                        }
                    } else {
                        assert!(o.value.is_none(), "non-root got data");
                    }
                }
            }
        }
    }

    #[test]
    fn scatterv_delivers_each_rank_its_piece() {
        for p in 1..=9 {
            for root in 0..p {
                let out = Universe::new(p).run(move |c| {
                    let pieces: Vec<Vec<u8>> =
                        (0..c.size()).map(|r| vec![r as u8; r % 4 + 1]).collect();
                    let input = if c.rank() == root { pieces } else { Vec::new() };
                    c.scatterv(root, &input)
                });
                for (r, o) in out.iter().enumerate() {
                    assert_eq!(
                        o.value,
                        vec![r as u8; r % 4 + 1],
                        "p={p} root={root} rank={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn vector_allreduce_sums_elementwise() {
        let out = Universe::new(5).run(|c| {
            let mine: Vec<f64> = (0..4).map(|k| (c.rank() * 10 + k) as f64).collect();
            c.allreduce_f64_vec_sum(&mine)
        });
        // Σ_r (10r + k) for r in 0..5 = 100 + 5k
        for o in &out {
            for (k, v) in o.value.iter().enumerate() {
                assert_eq!(*v, 100.0 + 5.0 * k as f64);
            }
        }
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let out = Universe::new(6).run(|c| {
            let mine = vec![c.rank() as u8 + 100];
            let gathered = c.gatherv(0, &mine);
            let pieces = gathered.unwrap_or_default();
            c.scatterv(0, &pieces)
        });
        for (r, o) in out.iter().enumerate() {
            assert_eq!(o.value, vec![r as u8 + 100]);
        }
    }
}
