//! Reduction operand types, including the MINLOC/MAXLOC pairs the solver
//! uses to agree on the globally worst KKT violators.

/// A `(value, index)` pair reduced by MINLOC: the smallest value wins and
/// ties break towards the smaller index, making the reduction fully
/// deterministic regardless of rank arrival order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinLoc {
    /// The value being minimized.
    pub value: f64,
    /// A global identifier (sample index) carried with the value.
    pub index: u64,
}

/// A `(value, index)` pair reduced by MAXLOC (largest value wins, ties break
/// towards the smaller index).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaxLoc {
    /// The value being maximized.
    pub value: f64,
    /// A global identifier (sample index) carried with the value.
    pub index: u64,
}

impl MinLoc {
    /// The identity element (`+∞`, max index) — loses to everything.
    pub fn identity() -> Self {
        MinLoc {
            value: f64::INFINITY,
            index: u64::MAX,
        }
    }

    /// Combine two candidates.
    #[inline]
    pub fn combine(a: MinLoc, b: MinLoc) -> MinLoc {
        if b.value < a.value || (b.value == a.value && b.index < a.index) {
            b
        } else {
            a
        }
    }

    pub(crate) fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.value.to_le_bytes());
        out[8..].copy_from_slice(&self.index.to_le_bytes());
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Self {
        MinLoc {
            value: f64::from_le_bytes(bytes[..8].try_into().unwrap()),
            index: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        }
    }
}

impl MaxLoc {
    /// The identity element (`−∞`, max index) — loses to everything.
    pub fn identity() -> Self {
        MaxLoc {
            value: f64::NEG_INFINITY,
            index: u64::MAX,
        }
    }

    /// Combine two candidates.
    #[inline]
    pub fn combine(a: MaxLoc, b: MaxLoc) -> MaxLoc {
        if b.value > a.value || (b.value == a.value && b.index < a.index) {
            b
        } else {
            a
        }
    }

    pub(crate) fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.value.to_le_bytes());
        out[8..].copy_from_slice(&self.index.to_le_bytes());
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Self {
        MaxLoc {
            value: f64::from_le_bytes(bytes[..8].try_into().unwrap()),
            index: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minloc_prefers_smaller_value() {
        let a = MinLoc {
            value: 1.0,
            index: 9,
        };
        let b = MinLoc {
            value: 2.0,
            index: 1,
        };
        assert_eq!(MinLoc::combine(a, b), a);
        assert_eq!(MinLoc::combine(b, a), a);
    }

    #[test]
    fn minloc_ties_break_on_index() {
        let a = MinLoc {
            value: 1.0,
            index: 9,
        };
        let b = MinLoc {
            value: 1.0,
            index: 3,
        };
        assert_eq!(MinLoc::combine(a, b), b);
        assert_eq!(MinLoc::combine(b, a), b);
    }

    #[test]
    fn minloc_identity_loses() {
        let a = MinLoc {
            value: 1e300,
            index: 0,
        };
        assert_eq!(MinLoc::combine(MinLoc::identity(), a), a);
    }

    #[test]
    fn maxloc_mirrors() {
        let a = MaxLoc {
            value: 5.0,
            index: 2,
        };
        let b = MaxLoc {
            value: 3.0,
            index: 0,
        };
        assert_eq!(MaxLoc::combine(a, b), a);
        let t1 = MaxLoc {
            value: 5.0,
            index: 7,
        };
        assert_eq!(MaxLoc::combine(a, t1), a);
        assert_eq!(MaxLoc::combine(MaxLoc::identity(), b), b);
    }

    #[test]
    fn codecs_roundtrip() {
        let m = MinLoc {
            value: -0.5,
            index: 123456789,
        };
        assert_eq!(MinLoc::decode(&m.encode()), m);
        let m = MaxLoc {
            value: f64::MAX,
            index: 1,
        };
        assert_eq!(MaxLoc::decode(&m.encode()), m);
    }

    #[test]
    fn combines_are_associative() {
        let xs = [
            MinLoc {
                value: 3.0,
                index: 1,
            },
            MinLoc {
                value: 1.0,
                index: 5,
            },
            MinLoc {
                value: 1.0,
                index: 2,
            },
        ];
        let l = MinLoc::combine(MinLoc::combine(xs[0], xs[1]), xs[2]);
        let r = MinLoc::combine(xs[0], MinLoc::combine(xs[1], xs[2]));
        assert_eq!(l, r);
    }
}
