//! Validated environment-variable parsing.
//!
//! Configuration knobs read from the environment
//! (`SHRINKSVM_LIVENESS_TIMEOUT_SECS`, `SHRINKSVM_CHAOS_SEED_OFFSET`, …)
//! must never *silently* fall back to a default on a typo: a chaos sweep
//! that thinks it ran seed offset 200 but actually ran 0 produces green
//! CI over the wrong grid. [`env_u64`] distinguishes the three cases —
//! unset (use the default), set to a valid number (use it), set to
//! garbage (a named [`EnvVarError`] the caller surfaces loudly).

use std::fmt;

/// A malformed environment-variable value, naming the variable and the
/// offending value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvVarError {
    /// The environment variable's name.
    pub name: String,
    /// The rejected value.
    pub value: String,
}

impl fmt::Display for EnvVarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: invalid value '{}' (expected a whole number)",
            self.name, self.value
        )
    }
}

impl std::error::Error for EnvVarError {}

/// Read `name` as a `u64`. Returns `Ok(None)` when unset (or set to the
/// empty string, which shells produce for `VAR= cmd`), `Ok(Some(v))` for
/// a valid number, and a named [`EnvVarError`] otherwise — never a
/// silent default.
///
/// # Errors
///
/// Fails when the variable is set to anything but a whole number.
pub fn env_u64(name: &str) -> Result<Option<u64>, EnvVarError> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(raw) => {
            let trimmed = raw.trim();
            if trimmed.is_empty() {
                return Ok(None);
            }
            trimmed.parse::<u64>().map(Some).map_err(|_| EnvVarError {
                name: name.to_string(),
                value: raw,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Scratch variable names: the real knobs (liveness timeout, seed
    // offset) are read by concurrently-running tests, so these tests own
    // names nothing else looks at.
    #[test]
    fn unset_and_empty_are_none() {
        std::env::remove_var("SHRINKSVM_ENV_TEST_UNSET");
        assert_eq!(env_u64("SHRINKSVM_ENV_TEST_UNSET"), Ok(None));
        std::env::set_var("SHRINKSVM_ENV_TEST_EMPTY", "   ");
        assert_eq!(env_u64("SHRINKSVM_ENV_TEST_EMPTY"), Ok(None));
        std::env::remove_var("SHRINKSVM_ENV_TEST_EMPTY");
    }

    #[test]
    fn valid_numbers_parse_with_whitespace() {
        std::env::set_var("SHRINKSVM_ENV_TEST_OK", " 42 ");
        assert_eq!(env_u64("SHRINKSVM_ENV_TEST_OK"), Ok(Some(42)));
        std::env::remove_var("SHRINKSVM_ENV_TEST_OK");
    }

    #[test]
    fn garbage_is_a_named_error_not_a_default() {
        std::env::set_var("SHRINKSVM_ENV_TEST_BAD", "fast");
        let err = env_u64("SHRINKSVM_ENV_TEST_BAD").unwrap_err();
        assert_eq!(err.name, "SHRINKSVM_ENV_TEST_BAD");
        assert_eq!(err.value, "fast");
        let msg = err.to_string();
        assert!(msg.contains("SHRINKSVM_ENV_TEST_BAD"), "{msg}");
        assert!(msg.contains("'fast'"), "{msg}");
        std::env::remove_var("SHRINKSVM_ENV_TEST_BAD");
    }

    #[test]
    fn negative_values_are_rejected() {
        std::env::set_var("SHRINKSVM_ENV_TEST_NEG", "-5");
        assert!(env_u64("SHRINKSVM_ENV_TEST_NEG").is_err());
        std::env::remove_var("SHRINKSVM_ENV_TEST_NEG");
    }
}
