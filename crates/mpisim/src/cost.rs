//! LogGP-style network cost model.

/// Parameters of the simulated network.
///
/// A message of `b` bytes from a sender whose clock reads `t` arrives at
/// `t + send_overhead + latency + b · gap_per_byte`; the receiver's clock
/// becomes the max of its own clock and the arrival time. These three
/// numbers are the paper's `l` (network latency) and `1/G` (bandwidth) from
/// Table I, plus a small CPU send overhead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// One-way wire latency in seconds (`l`).
    pub latency: f64,
    /// Seconds per payload byte (`G`, the reciprocal bandwidth).
    pub gap_per_byte: f64,
    /// CPU time charged to the sender per message.
    pub send_overhead: f64,
}

impl CostParams {
    /// Zero-cost network: clocks only move via `advance_compute`. Useful for
    /// pure-correctness tests.
    pub fn zero() -> Self {
        CostParams {
            latency: 0.0,
            gap_per_byte: 0.0,
            send_overhead: 0.0,
        }
    }

    /// InfiniBand-FDR-like parameters matching the paper's testbed (PNNL
    /// Cascade): ~1.5 µs MPI latency, ~6.8 GB/s effective per-link
    /// bandwidth.
    pub fn fdr() -> Self {
        CostParams {
            latency: 1.5e-6,
            gap_per_byte: 1.0 / 6.8e9,
            send_overhead: 0.2e-6,
        }
    }

    /// Commodity-Ethernet-like parameters (for ablations on how the
    /// algorithm degrades on slow networks).
    pub fn ethernet_10g() -> Self {
        CostParams {
            latency: 25.0e-6,
            gap_per_byte: 1.0 / 1.1e9,
            send_overhead: 1.0e-6,
        }
    }

    /// Transfer time for `bytes` over one hop, excluding the sender
    /// overhead.
    #[inline]
    pub fn wire_time(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 * self.gap_per_byte
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::fdr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_is_affine_in_bytes() {
        let c = CostParams::fdr();
        let t0 = c.wire_time(0);
        let t1 = c.wire_time(1_000_000);
        assert!((t0 - c.latency).abs() < 1e-18);
        assert!(t1 > t0);
        assert!((t1 - t0 - 1_000_000.0 * c.gap_per_byte).abs() < 1e-15);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let c = CostParams::zero();
        assert_eq!(c.wire_time(1 << 20), 0.0);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        assert!(CostParams::fdr().latency < CostParams::ethernet_10g().latency);
        assert!(CostParams::fdr().gap_per_byte < CostParams::ethernet_10g().gap_per_byte);
    }
}
