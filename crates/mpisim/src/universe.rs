//! Launching a fleet of ranks.

use std::sync::Arc;
use std::time::Duration;

use shrinksvm_analyze::{ValidationReport, Violation};

use crate::comm::{Comm, RankFinal};
use crate::cost::CostParams;
use crate::fabric;
use crate::fault::{CrashNotice, FaultPlan};
use crate::monitor::RunMonitor;
use crate::stats::CommStats;

/// Default liveness timeout: the absolute fallback bound on a single
/// blocking receive when no override is configured.
pub const DEFAULT_LIVENESS_TIMEOUT: Duration = Duration::from_secs(300);

/// Environment variable overriding the default liveness timeout, in whole
/// seconds.
pub const LIVENESS_TIMEOUT_ENV: &str = "SHRINKSVM_LIVENESS_TIMEOUT_SECS";

/// What one rank produced: the closure's return value plus the rank's final
/// simulated clock and activity counters.
#[derive(Clone, Debug)]
pub struct RankOutcome<T> {
    /// The value returned by the rank closure.
    pub value: T,
    /// Final simulated time on this rank's clock, in seconds.
    pub clock: f64,
    /// Traffic and compute counters.
    pub stats: CommStats,
}

/// A set of `p` simulated ranks sharing a cost model (`MPI_COMM_WORLD`
/// analog). Construct once, [`Universe::run`] any number of programs.
///
/// A wait-for-graph deadlock detector is always active: a cyclic blocking
/// pattern is diagnosed in milliseconds with a per-rank report instead of
/// hanging. Full communication validation (vector clocks, collective
/// lockstep ledger, message conservation, tag discipline) is opt-in via
/// [`Universe::validated`] because it adds `O(p)` bookkeeping per message.
#[derive(Clone, Debug)]
pub struct Universe {
    p: usize,
    cost: CostParams,
    validate: bool,
    liveness: Duration,
    faults: Option<Arc<FaultPlan>>,
}

/// Publishes this rank's `Finished` state when the closure exits — normally
/// or by unwinding — so blocked peers can be diagnosed instead of hanging.
struct FinishGuard<'m> {
    monitor: &'m RunMonitor,
    rank: usize,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.monitor
            .publish_finished(self.rank, std::thread::panicking());
    }
}

impl Universe {
    /// A universe of `p` ranks with zero-cost networking (pure correctness).
    ///
    /// The liveness timeout defaults to [`DEFAULT_LIVENESS_TIMEOUT`],
    /// overridable process-wide via the `SHRINKSVM_LIVENESS_TIMEOUT_SECS`
    /// environment variable or per-universe via
    /// [`Universe::with_liveness_timeout`].
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        let liveness = std::env::var(LIVENESS_TIMEOUT_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .map_or(DEFAULT_LIVENESS_TIMEOUT, Duration::from_secs);
        Universe {
            p,
            cost: CostParams::zero(),
            validate: false,
            liveness,
            faults: None,
        }
    }

    /// Attach a network cost model.
    pub fn with_cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// Set the liveness timeout: the absolute fallback bound on a single
    /// blocking receive, for pathologies the wait-for-graph detector
    /// cannot see (e.g. a peer spinning forever in compute). Real
    /// communication deadlocks are still diagnosed in milliseconds.
    pub fn with_liveness_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "liveness timeout must be positive");
        self.liveness = timeout;
        self
    }

    /// Install a deterministic fault schedule: every run of this universe
    /// injects the plan's message drops/corruptions/delays and rank
    /// crashes/slowdowns, keyed on simulated time and the plan's seed.
    /// Injected crashes surface as recoverable errors through
    /// [`Universe::run_try`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// The liveness timeout in force.
    pub fn liveness_timeout(&self) -> Duration {
        self.liveness
    }

    /// Enable full communication validation: per-message vector clocks with
    /// happens-before checks, LogGP clock consistency, collective lockstep
    /// fingerprints, tag discipline and finalize-time message conservation.
    /// [`Universe::run`] then panics with the report if a run is dirty;
    /// [`Universe::run_report`] returns it instead.
    pub fn validated(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Run `f` on every rank concurrently (one OS thread per rank) and
    /// return the outcomes in rank order. Panics propagate: if any rank
    /// panics, the join panics here with that rank's payload (preferring the
    /// first rank that panicked over secondary casualties). Under
    /// [`Universe::validated`], a dirty validation report also panics.
    pub fn run<T, F>(&self, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let (outcomes, report) = self.run_report(f);
        if !report.is_clean() {
            panic!("{report}");
        }
        outcomes
    }

    /// Like [`Universe::run`], but hand back the [`ValidationReport`] instead
    /// of panicking on violations. Without [`Universe::validated`] the report
    /// is always clean. An injected rank crash still panics here; use
    /// [`Universe::run_try`] to recover from one.
    pub fn run_report<T, F>(&self, f: F) -> (Vec<RankOutcome<T>>, ValidationReport)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        match self.run_try(f) {
            Ok(result) => result,
            Err(notice) => panic!("{notice}"),
        }
    }

    /// Like [`Universe::run_report`], but an injected rank crash (a
    /// [`crate::FaultPlan`] crash rule firing) is returned as
    /// `Err(CrashNotice)` instead of propagating the panic, so a driver
    /// can recover — restart from a checkpoint, or continue degraded.
    /// Every other panic still propagates.
    pub fn run_try<T, F>(
        &self,
        f: F,
    ) -> Result<(Vec<RankOutcome<T>>, ValidationReport), CrashNotice>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let endpoints = fabric::build(self.p);
        let cost = self.cost;
        let p = self.p;
        let monitor = Arc::new(RunMonitor::new(p, self.validate));
        let mut outcomes: Vec<Option<RankOutcome<T>>> = (0..p).map(|_| None).collect();
        let mut finals: Vec<RankFinal> = Vec::with_capacity(if self.validate { p } else { 0 });
        let mut crashed: Option<CrashNotice> = None;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(p);
            for (rank, eps) in endpoints.into_iter().enumerate() {
                let f = &f;
                let monitor = Arc::clone(&monitor);
                let validate = self.validate;
                let liveness = self.liveness;
                let faults = self.faults.clone();
                handles.push(s.spawn(move || {
                    let mut comm =
                        Comm::new(rank, p, eps, cost, Arc::clone(&monitor), liveness, faults);
                    let _guard = FinishGuard {
                        monitor: &monitor,
                        rank,
                    };
                    let value = f(&mut comm);
                    let outcome = RankOutcome {
                        value,
                        clock: comm.clock(),
                        stats: comm.stats(),
                    };
                    // Under validation the channel endpoints outlive the
                    // rank so the universe can audit leftovers post-join.
                    let fin = if validate {
                        Some(comm.finalize())
                    } else {
                        None
                    };
                    (outcome, fin)
                }));
            }
            let mut joined: Vec<Option<Box<dyn std::any::Any + Send>>> = Vec::with_capacity(p);
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((outcome, fin)) => {
                        outcomes[rank] = Some(outcome);
                        if let Some(fin) = fin {
                            finals.push(fin);
                        }
                        joined.push(None);
                    }
                    Err(payload) => joined.push(Some(payload)),
                }
            }
            // Prefer the payload of the rank that panicked *first* — peers
            // that died reacting to it are secondary casualties.
            let preferred = monitor
                .first_panicked()
                .filter(|&r| matches!(joined.get(r), Some(Some(_))));
            let root = if let Some(r) = preferred {
                joined[r].take()
            } else {
                joined.iter_mut().find_map(Option::take)
            };
            if let Some(payload) = root {
                // An injected crash is a *planned* fault: surface it as a
                // value so the caller can recover. Anything else unwinds.
                match payload.downcast::<CrashNotice>() {
                    Ok(notice) => crashed = Some(*notice),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if let Some(notice) = crashed {
            return Err(notice);
        }
        let mut report = monitor.take_report();
        for fin in finals {
            audit_rank(&mut report, fin);
        }
        report.normalize();
        let outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("rank completed"))
            .collect();
        Ok((outcomes, report))
    }

    /// Convenience: run and return the maximum simulated clock across ranks
    /// (the fleet's makespan) alongside the rank-0 value.
    pub fn run_timed<T, F>(&self, f: F) -> (T, f64)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let mut outcomes = self.run(f);
        let makespan = outcomes.iter().map(|o| o.clock).fold(0.0f64, f64::max);
        (outcomes.remove(0).value, makespan)
    }
}

/// Message-conservation audit of one finished rank: anything still queued on
/// its channels was sent but never received; anything still in its pending
/// buffers was received off a channel but never matched.
fn audit_rank(report: &mut ValidationReport, fin: RankFinal) {
    let mut extra = Vec::new();
    for (src, queue) in fin.pending.into_iter().enumerate() {
        for msg in queue {
            extra.push(Violation::UnmatchedPending {
                rank: fin.rank,
                src,
                tag: msg.tag,
                bytes: msg.payload.len(),
            });
        }
    }
    for (src, rx) in fin.incoming.into_iter().enumerate() {
        while let Ok(msg) = rx.try_recv() {
            extra.push(Violation::UnreceivedMessage {
                src,
                dst: fin.rank,
                tag: msg.tag,
                bytes: msg.payload.len(),
            });
        }
    }
    report.extend(extra);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_rank_order() {
        let out = Universe::new(5).run(|c| c.rank() * 10);
        let vals: Vec<usize> = out.iter().map(|o| o.value).collect();
        assert_eq!(vals, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_universe_works() {
        let out = Universe::new(1).run(|c| {
            assert_eq!(c.size(), 1);
            c.allreduce_f64_sum(3.0)
        });
        assert_eq!(out[0].value, 3.0);
    }

    #[test]
    fn run_timed_reports_makespan() {
        let ((), t) = Universe::new(3).run_timed(|c| {
            c.advance_compute(c.rank() as f64);
        });
        assert_eq!(t, 2.0);
    }

    #[test]
    fn closures_can_borrow_environment() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let out = Universe::new(2).run(|c| data[c.rank()] * 2.0);
        assert_eq!(out[0].value, 2.0);
        assert_eq!(out[1].value, 4.0);
    }

    #[test]
    #[should_panic(expected = "rank panic bubbles")]
    fn rank_panics_propagate() {
        Universe::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("rank panic bubbles");
            }
            // rank 0 returns immediately; no cross-rank wait, so the panic
            // surfaces cleanly at join.
        });
    }

    #[test]
    #[should_panic(expected = "root cause panic")]
    fn first_panic_wins_over_secondary_casualties() {
        // rank 1 panics; rank 0 blocks on it and dies secondarily. The
        // surfaced payload must be rank 1's, despite rank 0 joining first.
        Universe::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("root cause panic");
            }
            c.recv(1, 7);
        });
    }

    #[test]
    fn universe_is_reusable() {
        let u = Universe::new(3);
        for _ in 0..3 {
            let out = u.run(|c| c.allreduce_u64_sum(1));
            assert!(out.iter().all(|o| o.value == 3));
        }
    }

    #[test]
    fn validated_clean_run_is_clean() {
        let (out, report) = Universe::new(4).validated().run_report(|c| {
            let peer = c.rank() ^ 1;
            let got = c.sendrecv(peer, 3, &[c.rank() as u8]);
            c.barrier();
            got[0]
        });
        assert!(report.is_clean(), "{report}");
        assert_eq!(out[0].value, 1);
    }

    #[test]
    fn validated_run_reports_unreceived_message() {
        let (_, report) = Universe::new(2).validated().run_report(|c| {
            if c.rank() == 0 {
                c.isend(1, 42, &[0u8; 24]);
            }
            // rank 1 never posts the matching receive
        });
        let s = report.to_string();
        assert!(!report.is_clean());
        assert!(s.contains("from rank 0 to rank 1"), "{s}");
        assert!(s.contains("tag 0x2a"), "{s}");
    }

    #[test]
    #[should_panic(expected = "communication deadlock diagnosed")]
    fn cyclic_deadlock_is_diagnosed() {
        Universe::new(2).run(|c| {
            // Both ranks receive before sending: classic head-on deadlock.
            let peer = 1 - c.rank();
            let _ = c.recv(peer, 1);
            c.send(peer, 1, &[]);
        });
    }
}
