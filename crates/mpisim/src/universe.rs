//! Launching a fleet of ranks.

use std::sync::Arc;
use std::time::Duration;

use shrinksvm_analyze::{FaultEvent, ValidationReport, Violation};
use shrinksvm_obs::critpath::{DepEvent, DepLog};
use shrinksvm_obs::flight::FlightRecorder;
use shrinksvm_obs::monitor::{self, HealthConfig};
use shrinksvm_obs::profile::Profile;
use shrinksvm_obs::timeline::{Event, Timeline};

use crate::comm::{Comm, RankFinal};
use crate::cost::CostParams;
use crate::fabric;
use crate::fault::{CrashNotice, FaultPlan};
use crate::monitor::RunMonitor;
use crate::stats::CommStats;

/// Default liveness timeout: the absolute fallback bound on a single
/// blocking receive when no override is configured.
pub const DEFAULT_LIVENESS_TIMEOUT: Duration = Duration::from_secs(300);

/// Environment variable overriding the default liveness timeout, in whole
/// seconds.
pub const LIVENESS_TIMEOUT_ENV: &str = "SHRINKSVM_LIVENESS_TIMEOUT_SECS";

/// What one rank produced: the closure's return value plus the rank's final
/// simulated clock and activity counters.
#[derive(Clone, Debug)]
pub struct RankOutcome<T> {
    /// The value returned by the rank closure.
    pub value: T,
    /// Final simulated time on this rank's clock, in seconds.
    pub clock: f64,
    /// Traffic and compute counters.
    pub stats: CommStats,
}

/// Everything a fully-observed run returns: per-rank outcomes, the
/// validation report, the merged [`Timeline`], and the replayable
/// dependency log.
pub type ObservedRun<T> = (Vec<RankOutcome<T>>, ValidationReport, Timeline, DepLog);

/// Build the hierarchical time [`Profile`] of an observed run: the
/// dependency log supplies the charges, the timeline's solver spans the
/// phase stacks.
///
/// # Errors
///
/// Propagates [`Profile::from_run`]'s contract: a log the replay rejects
/// or a profile that fails to reconcile with the attribution buckets.
pub fn profile_observed<T>(run: &ObservedRun<T>) -> Result<Profile, String> {
    Profile::from_run(&run.3, &run.2)
}

/// A set of `p` simulated ranks sharing a cost model (`MPI_COMM_WORLD`
/// analog). Construct once, [`Universe::run`] any number of programs.
///
/// A wait-for-graph deadlock detector is always active: a cyclic blocking
/// pattern is diagnosed in milliseconds with a per-rank report instead of
/// hanging. Full communication validation (vector clocks, collective
/// lockstep ledger, message conservation, tag discipline) is opt-in via
/// [`Universe::validated`] because it adds `O(p)` bookkeeping per message.
#[derive(Clone, Debug)]
pub struct Universe {
    p: usize,
    cost: CostParams,
    validate: bool,
    liveness: Duration,
    faults: Option<Arc<FaultPlan>>,
    tracing: bool,
    flight: Option<Arc<FlightRecorder>>,
    health: HealthConfig,
}

/// Publishes this rank's `Finished` state when the closure exits — normally
/// or by unwinding — so blocked peers can be diagnosed instead of hanging.
struct FinishGuard<'m> {
    monitor: &'m RunMonitor,
    rank: usize,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.monitor
            .publish_finished(self.rank, std::thread::panicking());
    }
}

impl Universe {
    /// A universe of `p` ranks with zero-cost networking (pure correctness).
    ///
    /// The liveness timeout defaults to [`DEFAULT_LIVENESS_TIMEOUT`],
    /// overridable process-wide via the `SHRINKSVM_LIVENESS_TIMEOUT_SECS`
    /// environment variable or per-universe via
    /// [`Universe::with_liveness_timeout`].
    ///
    /// # Panics
    ///
    /// Panics with a named diagnosis when the environment override is set
    /// to a non-numeric or zero value — a misconfigured knob must not
    /// silently fall back to the default.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        let liveness = match crate::env::env_u64(LIVENESS_TIMEOUT_ENV) {
            Ok(None) => DEFAULT_LIVENESS_TIMEOUT,
            Ok(Some(0)) => panic!("{LIVENESS_TIMEOUT_ENV}: must be a positive number of seconds"),
            Ok(Some(secs)) => Duration::from_secs(secs),
            Err(e) => panic!("{e}"),
        };
        Universe {
            p,
            cost: CostParams::zero(),
            validate: false,
            liveness,
            faults: None,
            tracing: false,
            flight: None,
            health: HealthConfig::default(),
        }
    }

    /// Attach a network cost model.
    pub fn with_cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// Set the liveness timeout: the absolute fallback bound on a single
    /// blocking receive, for pathologies the wait-for-graph detector
    /// cannot see (e.g. a peer spinning forever in compute). Real
    /// communication deadlocks are still diagnosed in milliseconds.
    pub fn with_liveness_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "liveness timeout must be positive");
        self.liveness = timeout;
        self
    }

    /// Install a deterministic fault schedule: every run of this universe
    /// injects the plan's message drops/corruptions/delays and rank
    /// crashes/slowdowns, keyed on simulated time and the plan's seed.
    /// Injected crashes surface as recoverable errors through
    /// [`Universe::run_try`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// The liveness timeout in force.
    pub fn liveness_timeout(&self) -> Duration {
        self.liveness
    }

    /// Record a simulated-time [`Timeline`] of every run: per-rank spans
    /// for compute, collectives and p2p receive waits, plus instant
    /// markers for retransmissions and every injected fault. Retrieve the
    /// merged timeline via [`Universe::run_observed`] /
    /// [`Universe::run_try_observed`]. Identical seeds produce
    /// byte-identical rendered traces because every timestamp comes off
    /// the simulated LogGP clock.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Whether runs record a timeline.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Attach a shared crash [`FlightRecorder`]: every rank mirrors its
    /// trace events (and terminal diagnostics — crash, retry exhaustion,
    /// deadlock, liveness timeout) into a bounded per-rank ring *at record
    /// time*, so the caller's `Arc` clone still holds each rank's last
    /// moments after a panic destroys the tracer buffers. Works with or
    /// without [`Universe::with_tracing`]. On a successful run the
    /// snapshot is also rendered into the [`ValidationReport`].
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Override the health-monitor thresholds (defaults are conservative
    /// enough that a fault-free run emits zero health events).
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Enable full communication validation: per-message vector clocks with
    /// happens-before checks, LogGP clock consistency, collective lockstep
    /// fingerprints, tag discipline and finalize-time message conservation.
    /// [`Universe::run`] then panics with the report if a run is dirty;
    /// [`Universe::run_report`] returns it instead.
    pub fn validated(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Run `f` on every rank concurrently (one OS thread per rank) and
    /// return the outcomes in rank order. Panics propagate: if any rank
    /// panics, the join panics here with that rank's payload (preferring the
    /// first rank that panicked over secondary casualties). Under
    /// [`Universe::validated`], a dirty validation report also panics.
    pub fn run<T, F>(&self, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let (outcomes, report) = self.run_report(f);
        if !report.is_clean() {
            panic!("{report}");
        }
        outcomes
    }

    /// Like [`Universe::run`], but hand back the [`ValidationReport`] instead
    /// of panicking on violations. Without [`Universe::validated`] the report
    /// is always clean. An injected rank crash still panics here; use
    /// [`Universe::run_try`] to recover from one.
    pub fn run_report<T, F>(&self, f: F) -> (Vec<RankOutcome<T>>, ValidationReport)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        match self.run_try(f) {
            Ok(result) => result,
            Err(notice) => panic!("{notice}"),
        }
    }

    /// Like [`Universe::run_report`], but an injected rank crash (a
    /// [`crate::FaultPlan`] crash rule firing) is returned as
    /// `Err(CrashNotice)` instead of propagating the panic, so a driver
    /// can recover — restart from a checkpoint, or continue degraded.
    /// Every other panic still propagates.
    pub fn run_try<T, F>(
        &self,
        f: F,
    ) -> Result<(Vec<RankOutcome<T>>, ValidationReport), CrashNotice>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        self.run_try_observed(f)
            .map(|(outcomes, report, _timeline, _deps)| (outcomes, report))
    }

    /// Like [`Universe::run`], but also return the merged simulated-time
    /// [`Timeline`] (empty unless built [`Universe::with_tracing`]).
    /// Panics on a rank crash or a dirty validation report.
    pub fn run_observed<T, F>(&self, f: F) -> (Vec<RankOutcome<T>>, Timeline)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        match self.run_try_observed(f) {
            Ok((outcomes, report, timeline, _deps)) => {
                if !report.is_clean() {
                    panic!("{report}");
                }
                (outcomes, timeline)
            }
            Err(notice) => panic!("{notice}"),
        }
    }

    /// Like [`Universe::run_try`], but also return the merged
    /// simulated-time [`Timeline`] — every rank's recorded track in rank
    /// order, with the fault ledger's injected events overlaid as instant
    /// markers on the affected rank's track — plus the merged cross-rank
    /// [`DepLog`] (matched send→recv edges and collective intervals with
    /// exact charge values), which
    /// [`PerfDoctor::analyze`](shrinksvm_obs::PerfDoctor::analyze) replays
    /// bit-for-bit. Without [`Universe::with_tracing`] both are empty.
    pub fn run_try_observed<T, F>(&self, f: F) -> Result<ObservedRun<T>, CrashNotice>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let endpoints = fabric::build(self.p);
        let cost = self.cost;
        let p = self.p;
        let monitor = Arc::new(RunMonitor::new(p, self.validate));
        let mut outcomes: Vec<Option<RankOutcome<T>>> = (0..p).map(|_| None).collect();
        let mut finals: Vec<RankFinal> = Vec::with_capacity(if self.validate { p } else { 0 });
        let mut tracks: Vec<Vec<Event>> = (0..p).map(|_| Vec::new()).collect();
        let mut dep_tracks: Vec<Vec<DepEvent>> = (0..p).map(|_| Vec::new()).collect();
        let mut crashed: Option<CrashNotice> = None;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(p);
            for (rank, eps) in endpoints.into_iter().enumerate() {
                let f = &f;
                let monitor = Arc::clone(&monitor);
                let validate = self.validate;
                let tracing = self.tracing;
                let liveness = self.liveness;
                let faults = self.faults.clone();
                let flight = self.flight.clone();
                handles.push(s.spawn(move || {
                    let mut comm =
                        Comm::new(rank, p, eps, cost, Arc::clone(&monitor), liveness, faults);
                    if tracing {
                        comm.enable_tracing();
                    }
                    if let Some(fr) = flight {
                        comm.enable_flight(fr);
                    }
                    let _guard = FinishGuard {
                        monitor: &monitor,
                        rank,
                    };
                    let value = f(&mut comm);
                    let events = comm.take_trace_events();
                    let deps = comm.take_dep_events();
                    let outcome = RankOutcome {
                        value,
                        clock: comm.clock(),
                        stats: comm.stats(),
                    };
                    // Under validation the channel endpoints outlive the
                    // rank so the universe can audit leftovers post-join.
                    let fin = if validate {
                        Some(comm.finalize())
                    } else {
                        None
                    };
                    (outcome, fin, events, deps)
                }));
            }
            let mut joined: Vec<Option<Box<dyn std::any::Any + Send>>> = Vec::with_capacity(p);
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((outcome, fin, events, deps)) => {
                        outcomes[rank] = Some(outcome);
                        if let Some(fin) = fin {
                            finals.push(fin);
                        }
                        tracks[rank] = events;
                        dep_tracks[rank] = deps;
                        joined.push(None);
                    }
                    Err(payload) => joined.push(Some(payload)),
                }
            }
            // Prefer the payload of the rank that panicked *first* — peers
            // that died reacting to it are secondary casualties.
            let preferred = monitor
                .first_panicked()
                .filter(|&r| matches!(joined.get(r), Some(Some(_))));
            let root = if let Some(r) = preferred {
                joined[r].take()
            } else {
                joined.iter_mut().find_map(Option::take)
            };
            if let Some(payload) = root {
                // An injected crash is a *planned* fault: surface it as a
                // value so the caller can recover. Anything else unwinds.
                match payload.downcast::<CrashNotice>() {
                    Ok(notice) => crashed = Some(*notice),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if let Some(notice) = crashed {
            return Err(notice);
        }
        let mut report = monitor.take_report();
        for fin in finals {
            audit_rank(&mut report, fin);
        }
        report.normalize();
        let (timeline, deps) = if self.tracing {
            let mut tl = Timeline::from_tracks(tracks);
            for e in &report.faults {
                tl.push(ledger_instant(e));
            }
            tl.normalize();
            // In-flight health verdicts, evaluated over the normalized
            // timeline (events + fault-ledger projections) and overlaid
            // as `cat:"health"` instants. A fault-free run under the
            // default thresholds produces none, keeping traced artifacts
            // byte-identical to their pre-monitor baselines.
            let health = monitor::analyze(tl.events(), &self.health);
            if !health.is_empty() {
                for h in &health {
                    let instant = h.to_instant();
                    if let Some(fr) = &self.flight {
                        fr.record(instant.clone());
                    }
                    tl.push(instant);
                }
                tl.normalize();
            }
            (tl, DepLog::from_ranks(dep_tracks))
        } else {
            (Timeline::new(), DepLog::new())
        };
        if let Some(fr) = &self.flight {
            report.flight = fr.snapshot().render_lines();
        }
        let outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("rank completed"))
            .collect();
        Ok((outcomes, report, timeline, deps))
    }

    /// Convenience: run and return the maximum simulated clock across ranks
    /// (the fleet's makespan) alongside the rank-0 value.
    pub fn run_timed<T, F>(&self, f: F) -> (T, f64)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let mut outcomes = self.run(f);
        let makespan = outcomes.iter().map(|o| o.clock).fold(0.0f64, f64::max);
        (outcomes.remove(0).value, makespan)
    }
}

/// Map one fault-ledger entry to an instant marker on the affected rank's
/// timeline track, at the ledger's simulated time.
fn ledger_instant(e: &FaultEvent) -> Event {
    let (track, name, t) = match *e {
        FaultEvent::MessageDropped {
            rank,
            src,
            sim_time,
            ..
        } => (rank as u32, format!("drop(src={src})"), sim_time),
        FaultEvent::MessageCorrupted {
            rank,
            src,
            sim_time,
            ..
        } => (rank as u32, format!("corruption(src={src})"), sim_time),
        FaultEvent::MessageDelayed {
            rank,
            src,
            secs,
            sim_time,
            ..
        } => (rank as u32, format!("delay(src={src},+{secs}s)"), sim_time),
        FaultEvent::MessageLost {
            rank,
            src,
            attempts,
            sim_time,
            ..
        } => (
            rank as u32,
            format!("lost(src={src},attempts={attempts})"),
            sim_time,
        ),
        FaultEvent::RankCrashed { rank, sim_time } => (rank as u32, "crash".to_string(), sim_time),
        FaultEvent::RankSlowed {
            rank,
            factor,
            sim_time,
        } => (rank as u32, format!("slowdown(x{factor})"), sim_time),
    };
    Event::Instant {
        track,
        name,
        cat: "fault".to_string(),
        t,
    }
}

/// Message-conservation audit of one finished rank: anything still queued on
/// its channels was sent but never received; anything still in its pending
/// buffers was received off a channel but never matched.
fn audit_rank(report: &mut ValidationReport, fin: RankFinal) {
    let mut extra = Vec::new();
    for (src, queue) in fin.pending.into_iter().enumerate() {
        for msg in queue {
            extra.push(Violation::UnmatchedPending {
                rank: fin.rank,
                src,
                tag: msg.tag,
                bytes: msg.payload.len(),
            });
        }
    }
    for (src, rx) in fin.incoming.into_iter().enumerate() {
        while let Ok(msg) = rx.try_recv() {
            extra.push(Violation::UnreceivedMessage {
                src,
                dst: fin.rank,
                tag: msg.tag,
                bytes: msg.payload.len(),
            });
        }
    }
    report.extend(extra);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_rank_order() {
        let out = Universe::new(5).run(|c| c.rank() * 10);
        let vals: Vec<usize> = out.iter().map(|o| o.value).collect();
        assert_eq!(vals, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_universe_works() {
        let out = Universe::new(1).run(|c| {
            assert_eq!(c.size(), 1);
            c.allreduce_f64_sum(3.0)
        });
        assert_eq!(out[0].value, 3.0);
    }

    #[test]
    fn run_timed_reports_makespan() {
        let ((), t) = Universe::new(3).run_timed(|c| {
            c.advance_compute(c.rank() as f64);
        });
        assert_eq!(t, 2.0);
    }

    #[test]
    fn closures_can_borrow_environment() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let out = Universe::new(2).run(|c| data[c.rank()] * 2.0);
        assert_eq!(out[0].value, 2.0);
        assert_eq!(out[1].value, 4.0);
    }

    #[test]
    #[should_panic(expected = "rank panic bubbles")]
    fn rank_panics_propagate() {
        Universe::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("rank panic bubbles");
            }
            // rank 0 returns immediately; no cross-rank wait, so the panic
            // surfaces cleanly at join.
        });
    }

    #[test]
    #[should_panic(expected = "root cause panic")]
    fn first_panic_wins_over_secondary_casualties() {
        // rank 1 panics; rank 0 blocks on it and dies secondarily. The
        // surfaced payload must be rank 1's, despite rank 0 joining first.
        Universe::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("root cause panic");
            }
            c.recv(1, 7);
        });
    }

    #[test]
    fn universe_is_reusable() {
        let u = Universe::new(3);
        for _ in 0..3 {
            let out = u.run(|c| c.allreduce_u64_sum(1));
            assert!(out.iter().all(|o| o.value == 3));
        }
    }

    #[test]
    fn validated_clean_run_is_clean() {
        let (out, report) = Universe::new(4).validated().run_report(|c| {
            let peer = c.rank() ^ 1;
            let got = c.sendrecv(peer, 3, &[c.rank() as u8]);
            c.barrier();
            got[0]
        });
        assert!(report.is_clean(), "{report}");
        assert_eq!(out[0].value, 1);
    }

    #[test]
    fn validated_run_reports_unreceived_message() {
        let (_, report) = Universe::new(2).validated().run_report(|c| {
            if c.rank() == 0 {
                c.isend(1, 42, &[0u8; 24]);
            }
            // rank 1 never posts the matching receive
        });
        let s = report.to_string();
        assert!(!report.is_clean());
        assert!(s.contains("from rank 0 to rank 1"), "{s}");
        assert!(s.contains("tag 0x2a"), "{s}");
    }

    #[test]
    fn tracing_records_spans_and_is_deterministic() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.0,
            send_overhead: 0.0,
        };
        let run = || {
            let (_, tl) = Universe::new(2)
                .with_cost(cost)
                .with_tracing()
                .run_observed(|c| {
                    c.advance_compute(1.0 + c.rank() as f64);
                    c.allreduce_f64_sum(1.0);
                    c.trace_mark("phase_done", "solver");
                });
            tl
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty());
        let json = a.to_chrome_json();
        assert_eq!(json, b.to_chrome_json(), "same run, same bytes");
        assert_eq!(a.render_text(), b.render_text());
        assert!(json.contains("\"name\":\"compute\""), "{json}");
        assert!(json.contains("\"name\":\"allreduce\""), "{json}");
        // rank 0 finished compute first and waited on slower rank 1
        assert!(json.contains("\"name\":\"recv_wait\""), "{json}");
        assert!(json.contains("\"name\":\"phase_done\""), "{json}");
        assert_eq!(a.tracks(), 2);
    }

    #[test]
    fn untraced_runs_return_empty_timeline() {
        let (_, tl) = Universe::new(2).run_observed(|c| c.barrier());
        assert!(tl.is_empty());
    }

    #[test]
    fn dep_log_replays_the_makespan_bit_for_bit() {
        use shrinksvm_obs::PerfDoctor;
        let run = || {
            Universe::new(4)
                .with_cost(CostParams::fdr())
                .with_tracing()
                .run_try_observed(|c| {
                    c.advance_compute(1e-3 * (1.0 + c.rank() as f64));
                    let _ = c.allreduce_f64_sum(c.rank() as f64);
                    c.advance_compute(5e-4);
                    c.barrier();
                })
                .expect("fault-free")
        };
        let (outcomes, _, _, deps) = run();
        assert!(!deps.is_empty());
        let makespan = outcomes.iter().map(|o| o.clock).fold(0.0f64, f64::max);
        let doc = PerfDoctor::analyze(&deps, 0.0).expect("analyzable");
        // The identity replay and the critical-path walk both reproduce
        // the simulated makespan exactly, no tolerance.
        assert_eq!(doc.makespan.to_bits(), makespan.to_bits());
        assert_eq!(doc.critical_path.total().to_bits(), makespan.to_bits());
        // Collective hops are labeled with the collective's name.
        assert!(
            doc.critical_path
                .by_op
                .keys()
                .any(|k| k.contains("allreduce") || k.contains("barrier")),
            "{:?}",
            doc.critical_path.by_op
        );
        // Same seed, same bytes.
        let (_, _, _, deps2) = run();
        let doc2 = PerfDoctor::analyze(&deps2, 0.0).expect("analyzable");
        assert_eq!(doc.to_json(), doc2.to_json());
    }

    #[test]
    fn untraced_runs_return_empty_dep_log() {
        let (_, _, _, deps) = Universe::new(2)
            .run_try_observed(|c| c.barrier())
            .expect("clean");
        assert!(deps.is_empty());
    }

    #[test]
    fn injected_faults_appear_on_the_timeline() {
        use crate::fault::FaultPlan;
        // One guaranteed drop on the 0→1 link: the ledger entry must show
        // up as a fault instant on rank 1's track.
        let plan = FaultPlan::new(17).drop_messages(Some(0), Some(1), 1.0, 0.0, f64::MAX, 1);
        let (_, _, tl, _) = Universe::new(2)
            .with_faults(plan)
            .with_tracing()
            .run_try_observed(|c| {
                if c.rank() == 0 {
                    c.send(1, 1, &[42]);
                } else {
                    c.recv(0, 1);
                }
            })
            .expect("drop is survivable");
        let txt = tl.render_text();
        assert!(txt.contains("drop(src=0)"), "{txt}");
        let json = tl.to_chrome_json();
        assert!(json.contains("\"cat\":\"fault\""), "{json}");
        assert!(json.contains("retransmit"), "{json}");
    }

    #[test]
    fn idle_and_transfer_time_split_the_wait() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.5,
            send_overhead: 0.0,
        };
        let out = Universe::new(2).with_cost(cost).run(|c| {
            if c.rank() == 0 {
                c.advance_compute(10.0);
                c.send(1, 1, &[0u8; 4]);
            } else {
                c.recv(0, 1);
            }
        });
        let s = out[1].stats;
        // rank 1 waited from t=0 to t=13: 10s for rank 0's compute
        // (imbalance), then 1 + 4·0.5 = 3s of wire transfer.
        assert!((s.idle_time - 10.0).abs() < 1e-12, "idle {}", s.idle_time);
        assert!(
            (s.transfer_time - 3.0).abs() < 1e-12,
            "transfer {}",
            s.transfer_time
        );
        assert!((s.comm_time() - 13.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "communication deadlock diagnosed")]
    fn cyclic_deadlock_is_diagnosed() {
        Universe::new(2).run(|c| {
            // Both ranks receive before sending: classic head-on deadlock.
            let peer = 1 - c.rank();
            let _ = c.recv(peer, 1);
            c.send(peer, 1, &[]);
        });
    }
}
