//! Launching a fleet of ranks.

use crate::comm::Comm;
use crate::cost::CostParams;
use crate::fabric;
use crate::stats::CommStats;

/// What one rank produced: the closure's return value plus the rank's final
/// simulated clock and activity counters.
#[derive(Clone, Debug)]
pub struct RankOutcome<T> {
    /// The value returned by the rank closure.
    pub value: T,
    /// Final simulated time on this rank's clock, in seconds.
    pub clock: f64,
    /// Traffic and compute counters.
    pub stats: CommStats,
}

/// A set of `p` simulated ranks sharing a cost model (`MPI_COMM_WORLD`
/// analog). Construct once, [`Universe::run`] any number of programs.
#[derive(Clone, Debug)]
pub struct Universe {
    p: usize,
    cost: CostParams,
}

impl Universe {
    /// A universe of `p` ranks with zero-cost networking (pure correctness).
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        Universe {
            p,
            cost: CostParams::zero(),
        }
    }

    /// Attach a network cost model.
    pub fn with_cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Run `f` on every rank concurrently (one OS thread per rank) and
    /// return the outcomes in rank order. Panics propagate: if any rank
    /// panics, the join panics here with that rank's payload.
    pub fn run<T, F>(&self, f: F) -> Vec<RankOutcome<T>>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let endpoints = fabric::build(self.p);
        let cost = self.cost;
        let p = self.p;
        let mut outcomes: Vec<Option<RankOutcome<T>>> = (0..p).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(p);
            for (rank, eps) in endpoints.into_iter().enumerate() {
                let f = &f;
                handles.push(s.spawn(move || {
                    let mut comm = Comm::new(rank, p, eps, cost);
                    let value = f(&mut comm);
                    RankOutcome {
                        value,
                        clock: comm.clock(),
                        stats: comm.stats(),
                    }
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(outcome) => outcomes[rank] = Some(outcome),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        outcomes.into_iter().map(|o| o.expect("rank completed")).collect()
    }

    /// Convenience: run and return the maximum simulated clock across ranks
    /// (the fleet's makespan) alongside the rank-0 value.
    pub fn run_timed<T, F>(&self, f: F) -> (T, f64)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let mut outcomes = self.run(f);
        let makespan = outcomes.iter().map(|o| o.clock).fold(0.0f64, f64::max);
        (outcomes.remove(0).value, makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_rank_order() {
        let out = Universe::new(5).run(|c| c.rank() * 10);
        let vals: Vec<usize> = out.iter().map(|o| o.value).collect();
        assert_eq!(vals, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_universe_works() {
        let out = Universe::new(1).run(|c| {
            assert_eq!(c.size(), 1);
            c.allreduce_f64_sum(3.0)
        });
        assert_eq!(out[0].value, 3.0);
    }

    #[test]
    fn run_timed_reports_makespan() {
        let ((), t) = Universe::new(3).run_timed(|c| {
            c.advance_compute(c.rank() as f64);
        });
        assert_eq!(t, 2.0);
    }

    #[test]
    fn closures_can_borrow_environment() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let out = Universe::new(2).run(|c| data[c.rank()] * 2.0);
        assert_eq!(out[0].value, 2.0);
        assert_eq!(out[1].value, 4.0);
    }

    #[test]
    #[should_panic(expected = "rank panic bubbles")]
    fn rank_panics_propagate() {
        Universe::new(2).run(|c| {
            if c.rank() == 1 {
                panic!("rank panic bubbles");
            }
            // rank 0 returns immediately; no cross-rank wait, so the panic
            // surfaces cleanly at join.
        });
    }

    #[test]
    fn universe_is_reusable() {
        let u = Universe::new(3);
        for _ in 0..3 {
            let out = u.run(|c| c.allreduce_u64_sum(1));
            assert!(out.iter().all(|o| o.value == 3));
        }
    }
}
