//! Per-rank communicator: point-to-point layer, nonblocking requests, and
//! the simulated clock.

use std::collections::VecDeque;
use std::time::Duration;

use crate::cost::CostParams;
use crate::fabric::{Endpoints, Message};
use crate::stats::CommStats;
use crate::MAX_USER_TAG;

/// How long a blocking receive waits for a matching message before the
/// simulation declares itself deadlocked. Generous: legitimate waits are
/// bounded by the slowest rank's compute burst.
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(300);

/// A nonblocking-operation handle (`MPI_Request` analog).
///
/// Created by [`Comm::isend`] / [`Comm::irecv`], completed by
/// [`Comm::waitall`].
#[derive(Debug)]
pub enum Request {
    /// A send; complete at creation (the fabric buffers eagerly, like an MPI
    /// eager-protocol send of a small/medium message).
    Send,
    /// A posted receive, matched at wait time.
    Recv {
        /// Source rank.
        src: usize,
        /// Matching tag.
        tag: u64,
    },
}

/// The per-rank handle to the simulated machine: identity, point-to-point
/// operations, collectives (in [`crate::collectives`]), the simulated clock
/// and activity counters.
pub struct Comm {
    rank: usize,
    size: usize,
    endpoints: Endpoints,
    /// Messages received but not yet matched by tag, per source rank.
    pending: Vec<VecDeque<Message>>,
    clock: f64,
    cost: CostParams,
    stats: CommStats,
    pub(crate) coll_seq: u64,
}

impl Comm {
    pub(crate) fn new(rank: usize, size: usize, endpoints: Endpoints, cost: CostParams) -> Self {
        let pending = (0..size).map(|_| VecDeque::new()).collect();
        Comm {
            rank,
            size,
            endpoints,
            pending,
            clock: 0.0,
            cost,
            stats: CommStats::default(),
            coll_seq: 0,
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The simulated clock, in seconds.
    #[inline]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The cost model in force.
    pub fn cost(&self) -> CostParams {
        self.cost
    }

    /// Activity counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Charge `secs` of computation to this rank's simulated clock.
    #[inline]
    pub fn advance_compute(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0, "compute time cannot be negative");
        self.clock += secs;
        self.stats.compute_time += secs;
    }

    // ---------------------------------------------------------------- p2p

    /// Blocking-semantics send (buffered, so it never actually blocks —
    /// MPI's eager protocol).
    pub fn send(&mut self, dst: usize, tag: u64, payload: &[u8]) {
        debug_assert!(tag < MAX_USER_TAG, "tag {tag} is in the collective namespace");
        self.send_internal(dst, tag, payload);
    }

    pub(crate) fn send_internal(&mut self, dst: usize, tag: u64, payload: &[u8]) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        self.clock += self.cost.send_overhead;
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        self.endpoints.outgoing[dst]
            .send(Message {
                tag,
                payload: payload.to_vec(),
                depart: self.clock,
            })
            .unwrap_or_else(|_| panic!("rank {} vanished (channel closed)", dst));
    }

    /// Blocking receive of a message with `tag` from `src`.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<u8> {
        debug_assert!(tag < MAX_USER_TAG, "tag {tag} is in the collective namespace");
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal(&mut self, src: usize, tag: u64) -> Vec<u8> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        // Check messages already pulled off the channel.
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            let msg = self.pending[src].remove(pos).unwrap();
            return self.accept(msg);
        }
        loop {
            let msg = self.endpoints.incoming[src]
                .recv_timeout(DEADLOCK_TIMEOUT)
                .unwrap_or_else(|_| {
                    panic!(
                        "rank {}: deadlock/timeout waiting for tag {tag:#x} from rank {src}",
                        self.rank
                    )
                });
            if msg.tag == tag {
                return self.accept(msg);
            }
            self.pending[src].push_back(msg);
        }
    }

    /// Book a matched message: advance the clock per the cost model and
    /// return its payload.
    fn accept(&mut self, msg: Message) -> Vec<u8> {
        let arrive = msg.depart + self.cost.wire_time(msg.payload.len());
        if arrive > self.clock {
            self.stats.comm_time += arrive - self.clock;
            self.clock = arrive;
        }
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += msg.payload.len() as u64;
        msg.payload
    }

    /// Nonblocking send (`MPI_Isend`).
    pub fn isend(&mut self, dst: usize, tag: u64, payload: &[u8]) -> Request {
        self.send(dst, tag, payload);
        Request::Send
    }

    /// Post a nonblocking receive (`MPI_Irecv`).
    pub fn irecv(&mut self, src: usize, tag: u64) -> Request {
        debug_assert!(tag < MAX_USER_TAG, "tag {tag} is in the collective namespace");
        Request::Recv { src, tag }
    }

    /// Complete a batch of requests (`MPI_Waitall`). The returned vector is
    /// parallel to `reqs`: `Some(payload)` for receives, `None` for sends.
    pub fn waitall(&mut self, reqs: Vec<Request>) -> Vec<Option<Vec<u8>>> {
        reqs.into_iter()
            .map(|r| match r {
                Request::Send => None,
                Request::Recv { src, tag } => Some(self.recv_internal(src, tag)),
            })
            .collect()
    }

    /// Simultaneous send+receive with the same partner (`MPI_Sendrecv`);
    /// safe against head-on exchanges because sends are buffered.
    pub fn sendrecv(&mut self, partner: usize, tag: u64, payload: &[u8]) -> Vec<u8> {
        self.send(partner, tag, payload);
        self.recv(partner, tag)
    }

    // --------------------------------------------------------- typed sugar

    /// Send a slice of `f64`s.
    pub fn send_f64s(&mut self, dst: usize, tag: u64, data: &[f64]) {
        let mut buf = Vec::with_capacity(data.len() * 8);
        for v in data {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        self.send(dst, tag, &buf);
    }

    /// Receive a slice of `f64`s.
    pub fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        let bytes = self.recv(src, tag);
        decode_f64s(&bytes)
    }

    pub(crate) fn bump_coll_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    pub(crate) fn note_allreduce(&mut self) {
        self.stats.allreduces += 1;
    }
    pub(crate) fn note_bcast(&mut self) {
        self.stats.bcasts += 1;
    }
    pub(crate) fn note_barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// Force the simulated clock forward (used by tests; not part of the
    /// MPI-like surface).
    #[doc(hidden)]
    pub fn set_clock_for_test(&mut self, clock: f64) {
        self.clock = clock;
    }
}

/// Decode a little-endian f64 byte stream.
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len().is_multiple_of(8), "payload is not a whole number of f64s");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Encode a little-endian f64 byte stream.
pub fn encode_f64s(data: &[f64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(data.len() * 8);
    for v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;
    use crate::CostParams;

    #[test]
    fn ping_pong_delivers_payloads() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, &[1, 2, 3]);
                c.recv(1, 6)
            } else {
                let got = c.recv(0, 5);
                c.send(0, 6, &[9]);
                got
            }
        });
        assert_eq!(out[0].value, vec![9]);
        assert_eq!(out[1].value, vec![1, 2, 3]);
    }

    #[test]
    fn tag_matching_reorders() {
        // rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 2, &[2]);
                c.send(1, 1, &[1]);
                vec![]
            } else {
                let first = c.recv(0, 1);
                let second = c.recv(0, 2);
                vec![first[0], second[0]]
            }
        });
        assert_eq!(out[1].value, vec![1, 2]);
    }

    #[test]
    fn clock_advances_by_wire_time() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.5,
            send_overhead: 0.0,
        };
        let out = Universe::new(2).with_cost(cost).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, &[0u8; 4]);
            } else {
                c.recv(0, 1);
            }
            c.clock()
        });
        assert_eq!(out[0].value, 0.0);
        // arrive = 0 + 1.0 + 4*0.5 = 3.0
        assert!((out[1].value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clock_takes_max_of_local_and_arrival() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.0,
            send_overhead: 0.0,
        };
        let out = Universe::new(2).with_cost(cost).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, &[]);
            } else {
                c.advance_compute(10.0);
                c.recv(0, 1); // arrival (1.0) is in the past
            }
            c.clock()
        });
        assert!((out[1].value - 10.0).abs() < 1e-12);
        assert_eq!(out[1].stats.comm_time, 0.0);
    }

    #[test]
    fn compute_is_charged() {
        let out = Universe::new(1).run(|c| {
            c.advance_compute(2.5);
            (c.clock(), c.stats().compute_time)
        });
        assert_eq!(out[0].value, (2.5, 2.5));
    }

    #[test]
    fn isend_irecv_waitall_roundtrip() {
        let out = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let r1 = c.irecv(peer, 3);
            let r2 = c.isend(peer, 3, &[c.rank() as u8]);
            let reqs = vec![r1, r2];
            let done = c.waitall(reqs);
            done[0].as_ref().unwrap()[0]
        });
        assert_eq!(out[0].value, 1);
        assert_eq!(out[1].value, 0);
    }

    #[test]
    fn sendrecv_exchanges_head_on() {
        let out = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let got = c.sendrecv(peer, 9, &[c.rank() as u8 + 10]);
            got[0]
        });
        assert_eq!(out[0].value, 11);
        assert_eq!(out[1].value, 10);
    }

    #[test]
    fn f64_helpers_roundtrip() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send_f64s(1, 4, &[1.5, -2.25, f64::MIN_POSITIVE]);
                vec![]
            } else {
                c.recv_f64s(0, 4)
            }
        });
        assert_eq!(out[1].value, vec![1.5, -2.25, f64::MIN_POSITIVE]);
    }

    #[test]
    fn stats_count_traffic() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, &[0; 100]);
                c.send(1, 2, &[0; 50]);
            } else {
                c.recv(0, 1);
                c.recv(0, 2);
            }
            c.stats()
        });
        assert_eq!(out[0].stats.msgs_sent, 2);
        assert_eq!(out[0].stats.bytes_sent, 150);
        assert_eq!(out[1].value.msgs_recv, 2);
        assert_eq!(out[1].value.bytes_recv, 150);
    }
}
