//! Per-rank communicator: point-to-point layer, nonblocking requests, and
//! the simulated clock.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

use shrinksvm_analyze::{FaultEvent, VectorClock, Violation, WaitEdge};
use shrinksvm_obs::critpath::{DepEvent, DepRecorder};
use shrinksvm_obs::flight::FlightRecorder;
use shrinksvm_obs::timeline::{Event, TrackRecorder};

use crate::cost::CostParams;
use crate::fabric::{Endpoints, Message};
use crate::fault::{checksum, corrupt_copy, CrashNotice, Fate, FaultPlan};
use crate::monitor::{RunMonitor, StallSnapshot};
use crate::stats::CommStats;
use crate::MAX_USER_TAG;

/// How often a blocked receive re-checks the deadlock detector. Two
/// consecutive stalled observations one interval apart confirm a deadlock,
/// so diagnosis latency is ~2–3 intervals — milliseconds, not minutes.
const POLL: Duration = Duration::from_millis(5);

/// A nonblocking-operation handle (`MPI_Request` analog).
///
/// Created by [`Comm::isend`] / [`Comm::irecv`], completed by
/// [`Comm::waitall`].
#[derive(Debug)]
pub enum Request {
    /// A send; complete at creation (the fabric buffers eagerly, like an MPI
    /// eager-protocol send of a small/medium message).
    Send,
    /// A posted receive, matched at wait time.
    Recv {
        /// Source rank.
        src: usize,
        /// Matching tag.
        tag: u64,
    },
}

/// A nonblocking-collective handle (`MPI_Iallreduce`/`MPI_Ibcast` analog),
/// created by [`Comm::iallreduce_with`]-family initiators and completed by
/// [`Comm::coll_wait`].
///
/// The simulator executes the collective *eagerly at initiation* on a
/// virtual clock (SPMD order guarantees every rank reaches the initiation
/// point, so the wall-clock blocking inside is invisible): the combined
/// result and the virtual completion time are captured, then the caller's
/// clock is rewound to the initiation instant so its compute can advance
/// concurrently with the in-flight collective. `coll_wait` charges only
/// the *unhidden residue* `max(0, done − clock)` — compute issued between
/// initiation and wait hides that much of the collective's latency.
#[derive(Debug)]
pub struct CollRequest {
    /// The collective's combined payload, identical on every rank.
    result: Vec<u8>,
    /// Simulated clock at initiation.
    posted: f64,
    /// Virtual completion time of the collective on this rank.
    done: f64,
    /// Collective name for trace spans (`"iallreduce"`, `"ibcast"`).
    name: &'static str,
}

impl CollRequest {
    pub(crate) fn new(result: Vec<u8>, posted: f64, done: f64, name: &'static str) -> Self {
        CollRequest {
            result,
            posted,
            done,
            name,
        }
    }

    /// Simulated clock at initiation.
    pub fn posted(&self) -> f64 {
        self.posted
    }

    /// The virtual completion time this rank's wait will clamp to.
    pub fn done(&self) -> f64 {
        self.done
    }
}

/// The per-rank handle to the simulated machine: identity, point-to-point
/// operations, collectives (in [`crate::collectives`]), the simulated clock
/// and activity counters.
pub struct Comm {
    rank: usize,
    size: usize,
    endpoints: Endpoints,
    /// Messages received but not yet matched by tag, per source rank.
    pending: Vec<VecDeque<Message>>,
    clock: f64,
    cost: CostParams,
    stats: CommStats,
    pub(crate) coll_seq: u64,
    monitor: Arc<RunMonitor>,
    /// This rank's vector clock (maintained only under validation).
    vc: VectorClock,
    /// Highest source-clock component seen per source (FIFO monotonicity).
    last_src_clock: Vec<u64>,
    /// Absolute fallback bound on a single blocking receive, for
    /// pathologies the wait-for graph cannot see (e.g. a peer spinning
    /// forever in compute). Configurable via
    /// [`crate::Universe::with_liveness_timeout`] / the
    /// `SHRINKSVM_LIVENESS_TIMEOUT_SECS` environment variable.
    liveness: Duration,
    /// The installed fault plan, if any.
    faults: Option<Arc<FaultPlan>>,
    /// Per-`(link rule, source)` injection counters backing each rule's
    /// per-link `count` budget (deterministic: this receiver consumes each
    /// link's traffic in FIFO order).
    fault_hits: Vec<u64>,
    /// Per-destination send sequence numbers — the deterministic key that
    /// fault rules are coined on.
    send_seq: Vec<u64>,
    /// Which slowdown rules were already recorded in the fault ledger.
    slow_recorded: Vec<bool>,
    /// True while a nonblocking collective is being executed eagerly on
    /// the virtual clock: receive waits inside the window are concurrent
    /// with the caller's upcoming compute, so they must not book
    /// idle/transfer stats or `recv_wait` spans.
    in_overlap: bool,
    /// Simulated-time event recorder for this rank's timeline track
    /// (present only under [`crate::Universe::with_tracing`]).
    tracer: Option<TrackRecorder>,
    /// Cross-rank dependency recorder — every clock mutation with the
    /// exact charge values, so the event DAG can be replayed bit-for-bit
    /// (present only under [`crate::Universe::with_tracing`]).
    dep: Option<DepRecorder>,
    /// Shared crash flight recorder: a bounded per-rank ring every trace
    /// event is mirrored into *at record time*, so the last moments of
    /// this rank survive a panic that would destroy the tracer's buffer
    /// (present only under [`crate::Universe::with_flight`]). Mirrors
    /// even without tracing — the black box must work on untraced runs.
    flight: Option<Arc<FlightRecorder>>,
}

/// What a rank hands back to the universe after its closure returns, so
/// finalize-time conservation checks can run once every rank is done.
pub(crate) struct RankFinal {
    pub rank: usize,
    pub pending: Vec<VecDeque<Message>>,
    pub incoming: Vec<Receiver<Message>>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        endpoints: Endpoints,
        cost: CostParams,
        monitor: Arc<RunMonitor>,
        liveness: Duration,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let pending = (0..size).map(|_| VecDeque::new()).collect();
        let fault_hits = faults.as_ref().map_or(0, |plan| plan.n_link_rules() * size);
        let slow_recorded = faults.as_ref().map_or(0, |plan| plan.n_rank_rules());
        Comm {
            rank,
            size,
            endpoints,
            pending,
            clock: 0.0,
            cost,
            stats: CommStats::default(),
            coll_seq: 0,
            monitor,
            vc: VectorClock::new(size),
            last_src_clock: vec![0; size],
            liveness,
            faults,
            fault_hits: vec![0; fault_hits],
            send_seq: vec![0; size],
            slow_recorded: vec![false; slow_recorded],
            in_overlap: false,
            tracer: None,
            dep: None,
            flight: None,
        }
    }

    /// Start recording this rank's timeline track and dependency log
    /// (universe-internal; ranks are constructed untraced and switched on
    /// before the closure runs).
    pub(crate) fn enable_tracing(&mut self) {
        self.tracer = Some(TrackRecorder::new(self.rank as u32));
        self.dep = Some(DepRecorder::new());
    }

    /// Attach the shared crash flight recorder (universe-internal).
    pub(crate) fn enable_flight(&mut self, flight: Arc<FlightRecorder>) {
        self.flight = Some(flight);
    }

    /// Mirror a span into the flight ring (no-op without a recorder).
    fn flight_span(&self, name: &str, cat: &str, t0: f64, t1: f64) {
        if let Some(fr) = &self.flight {
            fr.record(Event::Span {
                track: self.rank as u32,
                name: name.to_string(),
                cat: cat.to_string(),
                t0,
                t1: t1.max(t0),
            });
        }
    }

    /// Mirror an instant into the flight ring (no-op without a recorder).
    fn flight_instant(&self, name: &str, cat: &str, t: f64) {
        if let Some(fr) = &self.flight {
            fr.record(Event::Instant {
                track: self.rank as u32,
                name: name.to_string(),
                cat: cat.to_string(),
                t,
            });
        }
    }

    /// Mirror a counter sample into the flight ring (no-op without a
    /// recorder).
    fn flight_counter(&self, name: &str, t: f64, value: f64) {
        if let Some(fr) = &self.flight {
            fr.record(Event::Counter {
                track: self.rank as u32,
                name: name.to_string(),
                t,
                value,
            });
        }
    }

    /// Hand over the recorded timeline events (empty without tracing).
    pub(crate) fn take_trace_events(&mut self) -> Vec<Event> {
        self.tracer
            .take()
            .map(TrackRecorder::finish)
            .unwrap_or_default()
    }

    /// Hand over the recorded dependency events (empty without tracing).
    pub(crate) fn take_dep_events(&mut self) -> Vec<DepEvent> {
        self.dep.take().map(DepRecorder::finish).unwrap_or_default()
    }

    /// Record a finished collective's interval in the dependency log so
    /// critical-path hops inside `[t0, t1]` are labeled with `name`
    /// (no-op without tracing).
    pub(crate) fn dep_coll(&mut self, name: &'static str, t0: f64, t1: f64) {
        if let Some(dep) = &mut self.dep {
            dep.coll(name, t0, t1);
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The simulated clock, in seconds.
    #[inline]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The cost model in force.
    pub fn cost(&self) -> CostParams {
        self.cost
    }

    /// Activity counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// This rank's vector clock (all zeros unless the universe was built
    /// with [`crate::Universe::validated`]).
    pub fn vector_clock(&self) -> &VectorClock {
        &self.vc
    }

    /// Charge `secs` of computation to this rank's simulated clock. Under
    /// an installed fault plan, active slowdown rules inflate the charge
    /// and due crash rules kill the rank.
    #[inline]
    pub fn advance_compute(&mut self, secs: f64) {
        self.advance_compute_classed(secs, "compute", None);
    }

    /// [`Comm::advance_compute`] with dependency-log annotations: `class`
    /// names the charge in critical-path reports, and `alt_secs` is what
    /// the same work would have cost under an infinitely large kernel
    /// cache (for the what-if projection; `None` means the cache could
    /// not have helped). Exactly one clock addition happens either way,
    /// so charging through this method is bit-identical to
    /// [`Comm::advance_compute`].
    pub fn advance_compute_classed(
        &mut self,
        secs: f64,
        class: &'static str,
        alt_secs: Option<f64>,
    ) {
        debug_assert!(secs >= 0.0, "compute time cannot be negative");
        let mut secs = secs;
        let mut alt = alt_secs.unwrap_or(secs);
        if let Some(plan) = &self.faults {
            if let Some((idx, factor)) = plan.slow_factor(self.rank, self.clock) {
                if !self.slow_recorded[idx] {
                    self.slow_recorded[idx] = true;
                    self.monitor.record_fault(FaultEvent::RankSlowed {
                        rank: self.rank,
                        factor,
                        sim_time: self.clock,
                    });
                }
                let extra = secs * (factor - 1.0);
                self.stats.slowdown_time += extra;
                secs += extra;
                // The all-hit alternative would be slowed identically.
                alt += alt * (factor - 1.0);
            }
        }
        let before = self.clock;
        self.clock += secs;
        self.stats.compute_time += secs;
        if secs > 0.0 {
            if let Some(tr) = &mut self.tracer {
                tr.span("compute", "compute", before, before + secs);
            }
            self.flight_span("compute", "compute", before, before + secs);
            if let Some(dep) = &mut self.dep {
                dep.compute(before, secs, alt, class);
            }
        }
        self.maybe_crash();
    }

    /// Kill this rank if an armed crash rule is due at its current
    /// simulated clock. The panic payload is a [`CrashNotice`], which the
    /// universe recognizes and surfaces as a recoverable error through
    /// [`crate::Universe::run_try`].
    fn maybe_crash(&mut self) {
        let Some(plan) = &self.faults else {
            return;
        };
        if let Some((rule, _)) = plan.crash_due(self.rank, self.clock) {
            self.monitor.record_fault(FaultEvent::RankCrashed {
                rank: self.rank,
                sim_time: self.clock,
            });
            // Last words into the black box: the tracer's buffer dies with
            // this unwind, the flight ring does not.
            self.flight_instant("crash", "fault", self.clock);
            std::panic::panic_any(CrashNotice {
                rank: self.rank,
                sim_time: self.clock,
                rule,
            });
        }
    }

    // ---------------------------------------------------------------- p2p

    /// Blocking-semantics send (buffered, so it never actually blocks —
    /// MPI's eager protocol).
    pub fn send(&mut self, dst: usize, tag: u64, payload: &[u8]) {
        self.check_user_tag(tag, "send");
        self.send_internal(dst, tag, payload);
    }

    pub(crate) fn send_internal(&mut self, dst: usize, tag: u64, payload: &[u8]) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        let before = self.clock;
        self.clock += self.cost.send_overhead;
        self.maybe_crash();
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        let vclock = if self.monitor.validate {
            self.vc.tick(self.rank);
            Some(self.vc.clone())
        } else {
            None
        };
        let link_seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        if let Some(dep) = &mut self.dep {
            dep.send(before, self.cost.send_overhead, dst as u32, tag, link_seq);
        }
        self.endpoints.outgoing[dst]
            .send(Message {
                tag,
                payload: payload.to_vec(),
                depart: self.clock,
                vclock,
                checksum: checksum(payload),
                link_seq,
                penalty: 0.0,
            })
            .unwrap_or_else(|_| panic!("rank {} vanished (channel closed)", dst));
    }

    /// Blocking receive of a message with `tag` from `src`.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<u8> {
        self.check_user_tag(tag, "recv");
        self.recv_internal(src, tag)
    }

    pub(crate) fn recv_internal(&mut self, src: usize, tag: u64) -> Vec<u8> {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        // Check messages already pulled off the channel.
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            let msg = self.pending[src].remove(pos).expect("position is in range");
            return self.accept(src, msg);
        }
        let mut published = false;
        let mut snapshot: Option<StallSnapshot> = None;
        let mut waited = Duration::ZERO;
        loop {
            match self.endpoints.incoming[src].recv_timeout(POLL) {
                Ok(msg) => {
                    self.on_dequeue(src, &msg);
                    let msg = self.resolve_transport(src, msg);
                    if msg.tag == tag {
                        if published {
                            self.monitor.publish_running(self.rank);
                        }
                        return self.accept(src, msg);
                    }
                    self.pending[src].push_back(msg);
                    // Progress was made but this rank is still blocked on
                    // `tag`; the published edge stays accurate.
                }
                Err(RecvTimeoutError::Timeout) => {
                    if !published {
                        self.monitor.publish_blocked(WaitEdge {
                            waiter: self.rank,
                            src,
                            tag,
                            collective: tag >= MAX_USER_TAG,
                        });
                        published = true;
                    }
                    match self.monitor.check_stalled(snapshot) {
                        Ok(next) => snapshot = next,
                        Err(report) => {
                            self.flight_instant(
                                &format!("deadlock(src={src},tag={tag:#x})"),
                                "fault",
                                self.clock,
                            );
                            panic!("{report}");
                        }
                    }
                    waited += POLL;
                    if waited >= self.liveness {
                        self.flight_instant(
                            &format!("liveness_timeout(src={src},tag={tag:#x})"),
                            "fault",
                            self.clock,
                        );
                        panic!(
                            "rank {}: liveness timeout after {:?} waiting for tag {tag:#x} from \
                             rank {src} (no global deadlock detected — a peer may be stuck in \
                             compute)",
                            self.rank, self.liveness
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // The only sender for this channel is rank `src` itself,
                    // so disconnection proves it finished (or panicked) with
                    // nothing buffered: this receive can never complete.
                    if !published {
                        self.monitor.publish_blocked(WaitEdge {
                            waiter: self.rank,
                            src,
                            tag,
                            collective: tag >= MAX_USER_TAG,
                        });
                    }
                    self.flight_instant(
                        &format!("peer_vanished(src={src},tag={tag:#x})"),
                        "fault",
                        self.clock,
                    );
                    panic!(
                        "rank {}: receive of tag {tag:#x} from rank {src} can never complete: \
                         rank {src} already finished and left no matching message",
                        self.rank
                    );
                }
            }
        }
    }

    /// Bookkeeping common to every channel dequeue (matched or buffered):
    /// the progress counter feeds the deadlock detector's stall check, and
    /// under validation the per-source clock components must be strictly
    /// increasing in FIFO order.
    fn on_dequeue(&mut self, src: usize, msg: &Message) {
        self.monitor.note_progress();
        if let Some(vc) = &msg.vclock {
            let got = vc.get(src);
            let prev = self.last_src_clock[src];
            if got <= prev {
                self.monitor.record(Violation::ClockRegression {
                    rank: self.rank,
                    src,
                    prev,
                    got,
                    tag: msg.tag,
                });
            }
            self.last_src_clock[src] = got.max(prev);
        }
    }

    /// Run one dequeued message through the fault plan's link rules,
    /// emulating an ARQ transport: a dropped or corrupted copy is
    /// "retransmitted" by charging exponential backoff into the message's
    /// in-flight penalty and re-coining its fate for the next attempt, up
    /// to the plan's retry budget. Deterministic because each link's
    /// traffic is consumed in FIFO order by exactly one receiver, and each
    /// attempt's fate is a pure function of
    /// `(seed, rule, src, dst, link_seq, attempt)`.
    ///
    /// Envelope integrity is always verified, fault plan or not: a
    /// checksum mismatch on a delivered copy is a transport bug.
    fn resolve_transport(&mut self, src: usize, mut msg: Message) -> Message {
        let Some(plan) = self.faults.clone() else {
            assert_eq!(
                checksum(&msg.payload),
                msg.checksum,
                "rank {}: transport bug — checksum mismatch on tag {:#x} from rank {src} \
                 without fault injection",
                self.rank,
                msg.tag
            );
            return msg;
        };
        let budget = 1 + plan.max_retries();
        let backoff_base = plan.retry_backoff();
        let mut attempt: u32 = 0;
        loop {
            let fate = plan.fate(
                src,
                self.rank,
                msg.depart,
                msg.link_seq,
                attempt,
                &mut self.fault_hits,
                self.size,
            );
            match fate {
                Fate::Deliver => {
                    assert_eq!(
                        checksum(&msg.payload),
                        msg.checksum,
                        "rank {}: transport bug — checksum mismatch on delivered copy of \
                         tag {:#x} from rank {src}",
                        self.rank,
                        msg.tag
                    );
                    return msg;
                }
                Fate::Delayed(secs) => {
                    msg.penalty += secs;
                    self.stats.delays_seen += 1;
                    self.monitor.record_fault(FaultEvent::MessageDelayed {
                        rank: self.rank,
                        src,
                        tag: msg.tag,
                        secs,
                        sim_time: msg.depart,
                    });
                    // A held copy still arrives intact; keep coining the
                    // remaining rules on the next attempt number so a delay
                    // does not shadow a later drop of the same copy.
                }
                Fate::Lost => {
                    self.stats.drops_seen += 1;
                    self.monitor.record_fault(FaultEvent::MessageDropped {
                        rank: self.rank,
                        src,
                        tag: msg.tag,
                        attempt,
                        sim_time: msg.depart,
                    });
                    self.retransmit_or_die(&mut msg, src, attempt, budget, backoff_base);
                }
                Fate::Corrupted => {
                    // Corrupt an actual copy and prove the checksum catches
                    // it — the detection path is exercised, not assumed.
                    let bad = corrupt_copy(&msg.payload, msg.link_seq.wrapping_add(attempt.into()));
                    assert_ne!(
                        checksum(&bad),
                        msg.checksum,
                        "rank {}: injected corruption on tag {:#x} from rank {src} was not \
                         detectable by the envelope checksum",
                        self.rank,
                        msg.tag
                    );
                    self.stats.corruptions_seen += 1;
                    self.monitor.record_fault(FaultEvent::MessageCorrupted {
                        rank: self.rank,
                        src,
                        tag: msg.tag,
                        attempt,
                        sim_time: msg.depart,
                    });
                    self.retransmit_or_die(&mut msg, src, attempt, budget, backoff_base);
                }
            }
            attempt += 1;
        }
    }

    /// Charge the backoff for retransmitting after attempt `attempt`
    /// failed, or fail fast with a named diagnosis once the retry budget
    /// is exhausted.
    fn retransmit_or_die(
        &mut self,
        msg: &mut Message,
        src: usize,
        attempt: u32,
        budget: u32,
        backoff_base: f64,
    ) {
        let attempts = attempt + 1;
        if attempts >= budget {
            self.monitor.record_fault(FaultEvent::MessageLost {
                rank: self.rank,
                src,
                tag: msg.tag,
                attempts,
                sim_time: msg.depart,
            });
            self.flight_instant(
                &format!("lost(src={src},attempts={attempts})"),
                "fault",
                msg.depart,
            );
            panic!(
                "rank {}: message with tag {:#x} from rank {src} permanently lost after \
                 {attempts} transmission attempt(s) — retry budget exhausted",
                self.rank, msg.tag
            );
        }
        let backoff = backoff_base * f64::powi(2.0, attempt as i32);
        msg.penalty += backoff;
        self.stats.retries += 1;
        self.stats.retry_time += backoff;
        if let Some(tr) = &mut self.tracer {
            // cat "fault" routes the instant to the dedicated fault track
            // in the Chrome export, next to the fault-ledger projections.
            tr.instant("retransmit", "fault", msg.depart);
        }
        self.flight_instant("retransmit", "fault", msg.depart);
    }

    // ------------------------------------------------------------- tracing

    /// Whether this communicator is recording a timeline.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Record a `[t0, t1]` span on this rank's timeline track (no-op
    /// without tracing). Times are simulated seconds, typically captured
    /// from [`Comm::clock`] around the spanned work.
    pub fn trace_span(&mut self, name: &str, cat: &str, t0: f64, t1: f64) {
        if let Some(tr) = &mut self.tracer {
            tr.span(name, cat, t0, t1);
        }
        self.flight_span(name, cat, t0, t1);
    }

    /// Record an instant event at the current simulated clock (no-op
    /// without tracing).
    pub fn trace_mark(&mut self, name: &str, cat: &str) {
        let t = self.clock;
        if let Some(tr) = &mut self.tracer {
            tr.instant(name, cat, t);
        }
        self.flight_instant(name, cat, t);
    }

    /// Record a counter sample at the current simulated clock (no-op
    /// without tracing).
    pub fn trace_counter(&mut self, name: &str, value: f64) {
        let t = self.clock;
        if let Some(tr) = &mut self.tracer {
            tr.counter(name, t, value);
        }
        self.flight_counter(name, t, value);
    }

    /// Book a matched message: advance the clock per the cost model (plus
    /// any injected in-flight penalty) and return its payload.
    fn accept(&mut self, src: usize, msg: Message) -> Vec<u8> {
        let wire = self.cost.wire_time(msg.payload.len());
        let arrive = msg.depart + wire + msg.penalty;
        if let Some(dep) = &mut self.dep {
            dep.recv(
                self.clock,
                src as u32,
                msg.tag,
                msg.link_seq,
                msg.depart,
                wire,
                msg.penalty,
            );
        }
        if arrive > self.clock {
            if self.in_overlap {
                // Inside a nonblocking collective's virtual window the
                // wait is concurrent with the caller's upcoming compute;
                // only the wait-time residue is booked (by `coll_wait`).
                self.clock = arrive;
            } else {
                let wait = arrive - self.clock;
                // The stretch before the sender even departed is imbalance
                // (idle); the rest is wire latency + bytes·G + any injected
                // in-flight penalty (transfer).
                let idle = (msg.depart - self.clock).clamp(0.0, wait);
                self.stats.idle_time += idle;
                self.stats.transfer_time += wait - idle;
                if let Some(tr) = &mut self.tracer {
                    tr.span("recv_wait", "p2p", self.clock, arrive);
                }
                self.flight_span("recv_wait", "p2p", self.clock, arrive);
                self.clock = arrive;
            }
        }
        if self.monitor.validate {
            if self.clock + 1e-9 < arrive {
                self.monitor.record(Violation::LogGpViolation {
                    rank: self.rank,
                    src,
                    tag: msg.tag,
                    expect_min: arrive,
                    got: self.clock,
                });
            }
            if let Some(vc) = &msg.vclock {
                self.vc.merge(vc);
            }
            self.vc.tick(self.rank);
        }
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += msg.payload.len() as u64;
        let payload = msg.payload;
        self.maybe_crash();
        payload
    }

    /// Nonblocking send (`MPI_Isend`).
    pub fn isend(&mut self, dst: usize, tag: u64, payload: &[u8]) -> Request {
        self.send(dst, tag, payload);
        Request::Send
    }

    /// Post a nonblocking receive (`MPI_Irecv`).
    pub fn irecv(&mut self, src: usize, tag: u64) -> Request {
        self.check_user_tag(tag, "irecv");
        Request::Recv { src, tag }
    }

    /// Complete a batch of requests (`MPI_Waitall`). The returned vector is
    /// parallel to `reqs`: `Some(payload)` for receives, `None` for sends.
    pub fn waitall(&mut self, reqs: Vec<Request>) -> Vec<Option<Vec<u8>>> {
        reqs.into_iter()
            .map(|r| match r {
                Request::Send => None,
                Request::Recv { src, tag } => Some(self.recv_internal(src, tag)),
            })
            .collect()
    }

    /// Simultaneous send+receive with the same partner (`MPI_Sendrecv`);
    /// safe against head-on exchanges because sends are buffered.
    pub fn sendrecv(&mut self, partner: usize, tag: u64, payload: &[u8]) -> Vec<u8> {
        self.send(partner, tag, payload);
        self.recv(partner, tag)
    }

    // -------------------------------------------- nonblocking collectives

    /// Open a nonblocking collective's virtual-clock window: record the
    /// initiation instant and switch receive accounting to overlapped
    /// mode. The collective body then runs eagerly with `self.clock`
    /// acting as the virtual clock.
    pub(crate) fn icoll_begin(&mut self) -> f64 {
        assert!(
            !self.in_overlap,
            "rank {}: nonblocking collectives do not nest",
            self.rank
        );
        let t0 = self.clock;
        self.in_overlap = true;
        if let Some(dep) = &mut self.dep {
            dep.icoll_start(t0);
        }
        t0
    }

    /// Close the virtual-clock window opened by [`Comm::icoll_begin`]:
    /// capture the virtual completion time, label the in-flight interval
    /// on the timeline and in the dependency log, then rewind the clock
    /// to the initiation instant so the caller's compute overlaps the
    /// collective. Returns the captured completion time.
    pub(crate) fn icoll_end(&mut self, name: &'static str, t0: f64) -> f64 {
        debug_assert!(self.in_overlap, "icoll_end without icoll_begin");
        let done = self.clock;
        // The labeling interval comes before the window-closing marker so
        // `coll_labels` attaches `name` to the inner sends/receives.
        self.trace_span(name, "coll", t0, done);
        self.dep_coll(name, t0, done);
        if let Some(dep) = &mut self.dep {
            dep.icoll_done(t0, done);
        }
        self.clock = t0;
        self.in_overlap = false;
        self.stats.icolls += 1;
        done
    }

    /// Complete a nonblocking collective (`MPI_Wait` on a collective
    /// request): clamp the clock to the collective's virtual completion
    /// time and return its combined payload. Compute charged between
    /// initiation and this call hides that much of the collective's
    /// latency — only the unhidden residue costs simulated time, booked
    /// as transfer (the fabric was the holdup, not a slow peer).
    ///
    /// Requests must be waited on in initiation order (FIFO), matching
    /// the replay's matching rule.
    pub fn coll_wait(&mut self, req: CollRequest) -> Vec<u8> {
        let CollRequest {
            result,
            posted,
            done,
            name,
        } = req;
        let t0 = self.clock;
        if let Some(dep) = &mut self.dep {
            dep.icoll_wait(t0);
        }
        let duration = done - posted;
        if done > t0 {
            let residue = done - t0;
            self.stats.transfer_time += residue;
            self.stats.overlap_wait += residue;
            self.stats.overlap_covered += (duration - residue).max(0.0);
            if let Some(tr) = &mut self.tracer {
                tr.span(name, "coll_wait", t0, done);
            }
            self.flight_span(name, "coll_wait", t0, done);
            self.clock = done;
        } else {
            self.stats.overlap_covered += duration;
        }
        self.maybe_crash();
        result
    }

    /// User tags must stay below [`MAX_USER_TAG`]. Under validation the
    /// breach is recorded for the finalize report (so the diagnosis names
    /// rank, op and tag); otherwise it is a debug assertion as before.
    fn check_user_tag(&self, tag: u64, op: &'static str) {
        if tag < MAX_USER_TAG {
            return;
        }
        if self.monitor.validate {
            self.monitor.record(Violation::TagOutOfRange {
                rank: self.rank,
                tag,
                op,
            });
        } else {
            debug_assert!(false, "tag {tag:#x} is in the collective namespace ({op})");
        }
    }

    // --------------------------------------------------------- typed sugar

    /// Send a slice of `f64`s.
    pub fn send_f64s(&mut self, dst: usize, tag: u64, data: &[f64]) {
        self.send(dst, tag, &encode_f64s(data));
    }

    /// Receive a slice of `f64`s.
    pub fn recv_f64s(&mut self, src: usize, tag: u64) -> Vec<f64> {
        let bytes = self.recv(src, tag);
        decode_f64s(&bytes)
    }

    pub(crate) fn bump_coll_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    pub(crate) fn monitor(&self) -> &RunMonitor {
        &self.monitor
    }

    pub(crate) fn note_allreduce(&mut self) {
        self.stats.allreduces += 1;
    }
    pub(crate) fn note_bcast(&mut self) {
        self.stats.bcasts += 1;
    }
    pub(crate) fn note_barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// Tear the communicator apart for finalize-time conservation checks:
    /// unmatched buffered messages and still-queued channel traffic are
    /// examined by the universe after every rank has joined.
    pub(crate) fn finalize(self) -> RankFinal {
        RankFinal {
            rank: self.rank,
            pending: self.pending,
            incoming: self.endpoints.incoming,
        }
    }

    /// Force the simulated clock forward (used by tests; not part of the
    /// MPI-like surface).
    #[doc(hidden)]
    pub fn set_clock_for_test(&mut self, clock: f64) {
        self.clock = clock;
    }
}

/// Decode a little-endian f64 byte stream.
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "payload is not a whole number of f64s"
    );
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

/// Encode a little-endian f64 byte stream.
pub fn encode_f64s(data: &[f64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(data.len() * 8);
    for v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;
    use crate::CostParams;

    #[test]
    fn ping_pong_delivers_payloads() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, &[1, 2, 3]);
                c.recv(1, 6)
            } else {
                let got = c.recv(0, 5);
                c.send(0, 6, &[9]);
                got
            }
        });
        assert_eq!(out[0].value, vec![9]);
        assert_eq!(out[1].value, vec![1, 2, 3]);
    }

    #[test]
    fn tag_matching_reorders() {
        // rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 2, &[2]);
                c.send(1, 1, &[1]);
                vec![]
            } else {
                let first = c.recv(0, 1);
                let second = c.recv(0, 2);
                vec![first[0], second[0]]
            }
        });
        assert_eq!(out[1].value, vec![1, 2]);
    }

    #[test]
    fn clock_advances_by_wire_time() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.5,
            send_overhead: 0.0,
        };
        let out = Universe::new(2).with_cost(cost).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, &[0u8; 4]);
            } else {
                c.recv(0, 1);
            }
            c.clock()
        });
        assert_eq!(out[0].value, 0.0);
        // arrive = 0 + 1.0 + 4*0.5 = 3.0
        assert!((out[1].value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clock_takes_max_of_local_and_arrival() {
        let cost = CostParams {
            latency: 1.0,
            gap_per_byte: 0.0,
            send_overhead: 0.0,
        };
        let out = Universe::new(2).with_cost(cost).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, &[]);
            } else {
                c.advance_compute(10.0);
                c.recv(0, 1); // arrival (1.0) is in the past
            }
            c.clock()
        });
        assert!((out[1].value - 10.0).abs() < 1e-12);
        assert_eq!(out[1].stats.comm_time(), 0.0);
    }

    #[test]
    fn compute_is_charged() {
        let out = Universe::new(1).run(|c| {
            c.advance_compute(2.5);
            (c.clock(), c.stats().compute_time)
        });
        assert_eq!(out[0].value, (2.5, 2.5));
    }

    #[test]
    fn isend_irecv_waitall_roundtrip() {
        let out = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let r1 = c.irecv(peer, 3);
            let r2 = c.isend(peer, 3, &[c.rank() as u8]);
            let reqs = vec![r1, r2];
            let done = c.waitall(reqs);
            done[0].as_ref().expect("recv slot has a payload")[0]
        });
        assert_eq!(out[0].value, 1);
        assert_eq!(out[1].value, 0);
    }

    #[test]
    fn sendrecv_exchanges_head_on() {
        let out = Universe::new(2).run(|c| {
            let peer = 1 - c.rank();
            let got = c.sendrecv(peer, 9, &[c.rank() as u8 + 10]);
            got[0]
        });
        assert_eq!(out[0].value, 11);
        assert_eq!(out[1].value, 10);
    }

    #[test]
    fn f64_helpers_roundtrip() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send_f64s(1, 4, &[1.5, -2.25, f64::MIN_POSITIVE]);
                vec![]
            } else {
                c.recv_f64s(0, 4)
            }
        });
        assert_eq!(out[1].value, vec![1.5, -2.25, f64::MIN_POSITIVE]);
    }

    #[test]
    fn stats_count_traffic() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, &[0; 100]);
                c.send(1, 2, &[0; 50]);
            } else {
                c.recv(0, 1);
                c.recv(0, 2);
            }
            c.stats()
        });
        assert_eq!(out[0].stats.msgs_sent, 2);
        assert_eq!(out[0].stats.bytes_sent, 150);
        assert_eq!(out[1].value.msgs_recv, 2);
        assert_eq!(out[1].value.bytes_recv, 150);
    }

    #[test]
    fn vector_clocks_order_messages_under_validation() {
        let out = Universe::new(2).validated().run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, &[1]);
                c.send(1, 2, &[2]);
            } else {
                c.recv(0, 1);
                c.recv(0, 2);
            }
            c.vector_clock().clone()
        });
        // rank 0: two send ticks; rank 1 merged both and ticked twice.
        assert_eq!(out[0].value.get(0), 2);
        assert_eq!(out[1].value.get(0), 2);
        assert_eq!(out[1].value.get(1), 2);
    }
}
