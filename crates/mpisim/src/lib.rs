//! An MPI-like message-passing substrate for single-host simulation of
//! distributed-memory algorithms.
//!
//! The paper's solver is an MPI program (MVAPICH2 on InfiniBand FDR); Rust
//! has no mature MPI binding, and this reproduction must run on one host
//! anyway. So we build the substrate: every *rank* is an OS thread, every
//! pair of ranks is connected by an unbounded channel, and the primitives
//! the paper uses — `Send`/`Recv`, `Isend`/`Irecv`/`Waitall`,
//! `Bcast` (binomial tree), `Allreduce` (recursive doubling, including
//! MINLOC/MAXLOC), `Barrier` (dissemination) and a ring shift — are
//! implemented *on top of the point-to-point layer*, exactly the way an MPI
//! library implements them.
//!
//! ## Simulated time
//!
//! Real wall-clock time on a single host says nothing about scaling, so the
//! substrate carries a LogGP-style cost model ([`CostParams`]): each rank
//! owns a simulated clock; every message departs stamped with the sender's
//! clock and the receiver advances to
//! `max(own, depart + latency + bytes·G)`. Compute is charged explicitly via
//! [`Comm::advance_compute`]. Because the collectives are built from
//! point-to-point messages, their `O(log p)` critical paths *emerge* from
//! the simulation rather than being asserted — the same trees an MPI
//! implementation would use produce the same time structure.
//!
//! ## Example
//!
//! ```
//! use shrinksvm_mpisim::{CostParams, Universe};
//!
//! let outcomes = Universe::new(4).with_cost(CostParams::fdr()).run(|comm| {
//!     let local = (comm.rank() + 1) as f64;
//!     comm.allreduce_f64_sum(local)
//! });
//! assert!(outcomes.iter().all(|o| o.value == 10.0));
//! ```

//! ## Correctness tooling
//!
//! A wait-for-graph deadlock detector is always on: a cyclic blocking
//! pattern (or a receive from a rank that already finished) is diagnosed in
//! milliseconds with a per-rank report naming ranks, sources and tags.
//! [`Universe::validated`] additionally enables per-message vector clocks
//! (happens-before checks), LogGP clock-consistency checks, a collective
//! lockstep ledger, user-tag discipline, and finalize-time message
//! conservation; [`Universe::run_report`] returns the [`ValidationReport`].
//!
//! ## Fault injection
//!
//! [`Universe::with_faults`] installs a [`FaultPlan`] — a seeded,
//! serializable schedule of message drops, corruptions and delays, rank
//! crashes and slowdowns, all keyed on simulated time. The transport
//! survives drops and (checksum-detected) corruptions with bounded
//! exponential-backoff retransmission; every injected fault is recorded in
//! [`CommStats`] and in the report's fault ledger. Injected crashes
//! surface as recoverable [`CrashNotice`] values via
//! [`Universe::run_try`].
//!
//! ## Tracing
//!
//! [`Universe::with_tracing`] records a simulated-time [`Timeline`]: every
//! rank's track carries spans for compute charges, collectives and p2p
//! receive waits, plus instant markers for retransmissions and every
//! injected fault from the ledger. [`Universe::run_observed`] /
//! [`Universe::run_try_observed`] return the merged timeline, exportable
//! as Chrome trace-event JSON (Perfetto-loadable) or a plain-text
//! per-rank listing. Programs add their own phases via
//! [`Comm::trace_span`] / [`Comm::trace_mark`] / [`Comm::trace_counter`].
//! Every timestamp comes off the simulated clock, so identical seeds
//! render byte-identical traces.

pub mod collectives;
pub mod comm;
pub mod cost;
pub mod env;
pub mod fabric;
pub mod fault;
mod monitor;
pub mod reduce;
pub mod stats;
pub mod universe;

pub use collectives::decode_minloc_maxloc;
pub use comm::{CollRequest, Comm, Request};
pub use cost::CostParams;
pub use env::{env_u64, EnvVarError};
pub use fault::{CkptRule, CrashNotice, FaultPlan, LinkFault, LinkRule, RankFault, RankRule};
pub use reduce::{MaxLoc, MinLoc};
pub use shrinksvm_analyze::{FaultEvent, ValidationReport, Violation};
pub use shrinksvm_obs::critpath::{DepEvent, DepLog};
pub use shrinksvm_obs::timeline::{Event as TraceEvent, Timeline, TrackRecorder};
pub use shrinksvm_obs::{PerfDoctor, Profile};
pub use stats::CommStats;
pub use universe::{
    profile_observed, ObservedRun, RankOutcome, Universe, DEFAULT_LIVENESS_TIMEOUT,
    LIVENESS_TIMEOUT_ENV,
};

/// User-visible tags must stay below this bound; higher tag space is
/// reserved for collectives.
pub const MAX_USER_TAG: u64 = 1 << 32;
