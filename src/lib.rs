//! # shrinksvm
//!
//! A distributed-memory Support Vector Machine trainer with adaptive sample
//! *shrinking* and distributed *gradient reconstruction* — a from-scratch
//! Rust reproduction of:
//!
//! > A. Vishnu, J. Narasimhan, L. Holder, D. Kerbyson, A. Hoisie.
//! > *Fast and Accurate Support Vector Machines on Large Scale Systems.*
//! > IEEE CLUSTER 2015.
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`sparse`] — CSR matrices, libsvm I/O, scaling, datasets.
//! * [`datagen`] — synthetic analogs of the paper's ten datasets.
//! * [`mpisim`] — the MPI-like message-passing substrate (threaded ranks,
//!   LogGP cost model, simulated clocks).
//! * [`threads`] — the OpenMP-analog thread pool used by the enhanced-libsvm
//!   baseline.
//! * [`core`] — SMO solvers (sequential, multicore, distributed), the
//!   shrinking heuristics of Table II, gradient reconstruction
//!   (Algorithm 3), models, metrics, cross-validation, tracing and the
//!   performance projector.
//! * [`obs`] — dependency-free telemetry: simulated-time timelines
//!   (Chrome trace-event export), a metrics registry and machine-readable
//!   benchmark reports.
//!
//! ## Quickstart
//!
//! ```
//! use shrinksvm::prelude::*;
//!
//! // A small, clearly separable synthetic problem.
//! let ds = shrinksvm::datagen::planted::PlantedConfig::small_demo(42).generate();
//! let (train, test) = ds.split_at(ds.len() * 4 / 5);
//!
//! let params = SvmParams::new(1.0, KernelKind::rbf_from_sigma_sq(1.0)).with_epsilon(1e-3);
//! let model = SmoSolver::new(&train, params).train().unwrap().model;
//! let acc = accuracy(&model, &test);
//! assert!(acc > 0.8, "accuracy was {acc}");
//! ```

pub use shrinksvm_core as core;
pub use shrinksvm_datagen as datagen;
pub use shrinksvm_mpisim as mpisim;
pub use shrinksvm_obs as obs;
pub use shrinksvm_sparse as sparse;
pub use shrinksvm_threads as threads;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use shrinksvm_core::dist::{CheckpointPolicy, DistConfig, DistSolver};
    pub use shrinksvm_core::kernel::KernelKind;
    pub use shrinksvm_core::metrics::accuracy;
    pub use shrinksvm_core::model::SvmModel;
    pub use shrinksvm_core::params::SvmParams;
    pub use shrinksvm_core::shrink::{Heuristic, ReconPolicy, ShrinkPolicy};
    pub use shrinksvm_core::smo::SmoSolver;
    pub use shrinksvm_mpisim::{CostParams, FaultPlan, Universe};
    pub use shrinksvm_obs::{BenchReport, MetricsRegistry, Timeline};
    pub use shrinksvm_sparse::{CsrMatrix, Dataset, RowView};
    pub use shrinksvm_threads::ThreadPool;
}
