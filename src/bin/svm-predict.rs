//! `svm-predict` — classify a libsvm-format file with a trained model, in
//! the spirit of libsvm's tool of the same name.
//!
//! ```text
//! svm-predict [-q] [-v] test_file model_file [output_file]
//!
//!   -q   quiet (accuracy only to stdout)
//!   -v   verbose: also print the confusion matrix / precision / recall
//! ```
//!
//! Writes one predicted label per line to `output_file` (if given) and
//! prints accuracy like libsvm: `Accuracy = 97.5% (390/400)`.

use std::io::Write;
use std::process::exit;

use shrinksvm::prelude::*;
use shrinksvm::sparse::io::read_libsvm;
use shrinksvm_core::metrics::Confusion;

fn usage() -> ! {
    eprintln!("usage: svm-predict [-q] [-v] test_file model_file [output_file]");
    exit(2);
}

fn main() {
    let mut quiet = false;
    let mut verbose = false;
    let mut positional: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "-q" => quiet = true,
            "-v" => verbose = true,
            "-h" | "--help" => usage(),
            _ => positional.push(a),
        }
    }
    if positional.len() < 2 || positional.len() > 3 {
        usage();
    }
    let test_file = &positional[0];
    let model_file = &positional[1];
    let output_file = positional.get(2);

    let ds = match read_libsvm(test_file) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("svm-predict: cannot read {test_file}: {e}");
            exit(1);
        }
    };
    let model = match SvmModel::load(model_file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("svm-predict: cannot load model {model_file}: {e}");
            exit(1);
        }
    };
    if !quiet {
        eprintln!(
            "model: {} SVs, kernel {}, bias {:+.6}",
            model.n_sv(),
            model.kernel().name(),
            model.bias()
        );
    }

    let mut out: Box<dyn Write> = match output_file {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("svm-predict: cannot create {path}: {e}");
                exit(1);
            }
        },
        None => Box::new(std::io::sink()),
    };
    let mut correct = 0usize;
    for i in 0..ds.len() {
        let pred = model.predict(ds.x.row(i));
        if pred == ds.y[i] {
            correct += 1;
        }
        writeln!(out, "{}", pred as i64).expect("write prediction");
    }
    out.flush().expect("flush predictions");

    println!(
        "Accuracy = {:.4}% ({}/{})",
        100.0 * correct as f64 / ds.len().max(1) as f64,
        correct,
        ds.len()
    );
    if verbose {
        let c = Confusion::evaluate(&model, &ds);
        println!(
            "confusion: tp={} fp={} tn={} fn={}",
            c.tp, c.fp, c.tn, c.fn_
        );
        println!(
            "precision = {:.4}  recall = {:.4}  f1 = {:.4}",
            c.precision(),
            c.recall(),
            c.f1()
        );
    }
}
