//! `svm-scale` — per-feature scaling of libsvm-format data, in the spirit
//! of libsvm's tool of the same name.
//!
//! ```text
//! svm-scale [-u upper] [-s save_file | -r restore_file] data_file
//!
//!   -u <float>  target magnitude (features land in [-u, u]; default 1.0)
//!   -s <file>   save the fitted scaling factors to <file>
//!   -r <file>   restore factors from <file> instead of fitting (so test
//!               sets are scaled consistently with their training set)
//! ```
//!
//! Scaled data is written to stdout. Scaling is zero-preserving (sparse
//! data stays sparse), matching this crate's `Scaler`.

use std::io::{BufRead, Write};
use std::process::exit;

use shrinksvm::sparse::io::{read_libsvm, write_libsvm_to};
use shrinksvm::sparse::scale::Scaler;
use shrinksvm::sparse::Dataset;

fn usage() -> ! {
    eprintln!("usage: svm-scale [-u upper] [-s save_file | -r restore_file] data_file");
    exit(2);
}

fn save_factors(path: &str, scaler: &Scaler) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "shrinksvm-scale v1 {}", scaler.hi)?;
    for (i, v) in scaler.factors.iter().enumerate() {
        writeln!(f, "{} {v:e}", i + 1)?;
    }
    f.flush()
}

fn load_factors(path: &str) -> Result<Scaler, String> {
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let mut lines = std::io::BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or("empty factor file")?
        .map_err(|e| e.to_string())?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() != 3 || toks[0] != "shrinksvm-scale" || toks[1] != "v1" {
        return Err(format!("bad header '{header}'"));
    }
    let hi: f64 = toks[2].parse().map_err(|_| "bad magnitude")?;
    let mut factors = Vec::new();
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        let mut t = line.split_whitespace();
        let idx: usize = t
            .next()
            .ok_or("missing index")?
            .parse()
            .map_err(|_| "bad index")?;
        let val: f64 = t
            .next()
            .ok_or("missing factor")?
            .parse()
            .map_err(|_| "bad factor")?;
        if idx != factors.len() + 1 {
            return Err(format!("non-contiguous factor index {idx}"));
        }
        factors.push(val);
    }
    Ok(Scaler { factors, hi })
}

fn main() {
    let mut upper = 1.0f64;
    let mut save: Option<String> = None;
    let mut restore: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-u" => {
                upper = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "-s" => save = Some(args.next().unwrap_or_else(|| usage())),
            "-r" => restore = Some(args.next().unwrap_or_else(|| usage())),
            "-h" | "--help" => usage(),
            _ => positional.push(a),
        }
    }
    if positional.len() != 1 || (save.is_some() && restore.is_some()) {
        usage();
    }
    let ds = match read_libsvm(&positional[0]) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("svm-scale: cannot read {}: {e}", positional[0]);
            exit(1);
        }
    };
    let scaler = match &restore {
        Some(path) => match load_factors(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("svm-scale: cannot restore factors: {e}");
                exit(1);
            }
        },
        None => Scaler::fit(&ds.x, upper),
    };
    if let Some(path) = &save {
        if let Err(e) = save_factors(path, &scaler) {
            eprintln!("svm-scale: cannot save factors: {e}");
            exit(1);
        }
    }
    let x = match scaler.transform(&ds.x) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("svm-scale: {e}");
            exit(1);
        }
    };
    let scaled = Dataset::new(x, ds.y).expect("labels unchanged");
    let stdout = std::io::stdout();
    if let Err(e) = write_libsvm_to(&scaled, stdout.lock()) {
        eprintln!("svm-scale: write failed: {e}");
        exit(1);
    }
}
