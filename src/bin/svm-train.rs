//! `svm-train` — command-line trainer in the spirit of libsvm's tool of
//! the same name, backed by the shrinksvm solvers.
//!
//! ```text
//! svm-train [options] training_file [model_file]
//!
//! options (libsvm-compatible where applicable):
//!   -t <int>     kernel: 0 linear, 1 polynomial, 2 RBF (default), 3 sigmoid
//!   -g <float>   gamma (default 1/num_features)
//!   -S <float>   sigma^2 (RBF width; overrides -g with 1/(2*sigma^2))
//!   -d <int>     polynomial degree (default 3)
//!   -r <float>   coef0 for poly/sigmoid (default 0)
//!   -c <float>   C (default 1)
//!   -e <float>   epsilon tolerance (default 1e-3)
//!   -m <int>     kernel cache size in MB, sequential solver only (default 100)
//!   -w+ <float>  weight multiplier of C for the +1 class (default 1)
//!   -w- <float>  weight multiplier of C for the -1 class (default 1)
//!   -H <name>    shrinking heuristic: Original (default), Single2..Single50pc,
//!                Multi2..Multi50pc (Table II names); forces the distributed solver
//!   -P <int>     distributed solver with this many simulated ranks
//!   -T <int>     multicore solver with this many threads
//!   -q           quiet
//! ```

use std::process::exit;

use shrinksvm::prelude::*;
use shrinksvm::sparse::io::read_libsvm;
use shrinksvm_core::params::WssKind;

struct Opts {
    kernel_t: u32,
    gamma: Option<f64>,
    sigma_sq: Option<f64>,
    degree: u32,
    coef0: f64,
    c: f64,
    eps: f64,
    cache_mb: usize,
    w_pos: f64,
    w_neg: f64,
    heuristic: Option<String>,
    processes: Option<usize>,
    threads: Option<usize>,
    quiet: bool,
    training_file: String,
    model_file: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: svm-train [-t 0|1|2|3] [-g gamma | -S sigma^2] [-d degree] [-r coef0] \
         [-c C] [-e eps] [-m MB] [-w+ w] [-w- w] [-H heuristic] [-P procs] [-T threads] [-q] \
         training_file [model_file]"
    );
    exit(2);
}

fn parse_args() -> Opts {
    let mut o = Opts {
        kernel_t: 2,
        gamma: None,
        sigma_sq: None,
        degree: 3,
        coef0: 0.0,
        c: 1.0,
        eps: 1e-3,
        cache_mb: 100,
        w_pos: 1.0,
        w_neg: 1.0,
        heuristic: None,
        processes: None,
        threads: None,
        quiet: false,
        training_file: String::new(),
        model_file: String::new(),
    };
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        let need = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "-t" => o.kernel_t = need(&mut args).parse().unwrap_or_else(|_| usage()),
            "-g" => o.gamma = Some(need(&mut args).parse().unwrap_or_else(|_| usage())),
            "-S" => o.sigma_sq = Some(need(&mut args).parse().unwrap_or_else(|_| usage())),
            "-d" => o.degree = need(&mut args).parse().unwrap_or_else(|_| usage()),
            "-r" => o.coef0 = need(&mut args).parse().unwrap_or_else(|_| usage()),
            "-c" => o.c = need(&mut args).parse().unwrap_or_else(|_| usage()),
            "-e" => o.eps = need(&mut args).parse().unwrap_or_else(|_| usage()),
            "-m" => o.cache_mb = need(&mut args).parse().unwrap_or_else(|_| usage()),
            "-w+" => o.w_pos = need(&mut args).parse().unwrap_or_else(|_| usage()),
            "-w-" => o.w_neg = need(&mut args).parse().unwrap_or_else(|_| usage()),
            "-H" => o.heuristic = Some(need(&mut args)),
            "-P" => o.processes = Some(need(&mut args).parse().unwrap_or_else(|_| usage())),
            "-T" => o.threads = Some(need(&mut args).parse().unwrap_or_else(|_| usage())),
            "-q" => o.quiet = true,
            "-h" | "--help" => usage(),
            _ => positional.push(a),
        }
    }
    match positional.len() {
        1 => {
            o.training_file = positional.remove(0);
            o.model_file = format!("{}.model", o.training_file);
        }
        2 => {
            o.training_file = positional.remove(0);
            o.model_file = positional.remove(0);
        }
        _ => usage(),
    }
    o
}

fn main() {
    let o = parse_args();
    let ds = match read_libsvm(&o.training_file) {
        Ok(ds) => ds,
        Err(e) => {
            eprintln!("svm-train: cannot read {}: {e}", o.training_file);
            exit(1);
        }
    };
    if !o.quiet {
        eprintln!("loaded {}", ds.summary());
    }

    let default_gamma = 1.0 / ds.x.ncols().max(1) as f64;
    let gamma = o
        .sigma_sq
        .map(|s2| 1.0 / (2.0 * s2))
        .or(o.gamma)
        .unwrap_or(default_gamma);
    let kernel = match o.kernel_t {
        0 => KernelKind::Linear,
        1 => KernelKind::Poly {
            gamma,
            coef0: o.coef0,
            degree: o.degree,
        },
        2 => KernelKind::Rbf { gamma },
        3 => KernelKind::Sigmoid {
            gamma,
            coef0: o.coef0,
        },
        _ => usage(),
    };
    let mut params = SvmParams::new(o.c, kernel)
        .with_epsilon(o.eps)
        .with_cache_bytes(o.cache_mb << 20)
        .with_class_weights(o.w_pos, o.w_neg)
        .with_wss(WssKind::SecondOrder);

    let policy = match o.heuristic.as_deref() {
        None => None,
        Some(name) => match ShrinkPolicy::parse(name) {
            Some(p) => Some(p),
            None => {
                eprintln!(
                    "svm-train: unknown heuristic '{name}' (use Table II names, e.g. Multi5pc)"
                );
                exit(2);
            }
        },
    };

    #[allow(clippy::disallowed_methods)]
    // allow-wall-clock: CLI-facing elapsed-time print, outside simulation
    let start = std::time::Instant::now();
    let (model, iterations, converged) = if policy.is_some() || o.processes.is_some() {
        // distributed path: cache-free, MVP selection, shrinking heuristics
        params.wss = WssKind::MaxViolatingPair;
        if let Some(p) = policy {
            params = params.with_shrink(p);
        }
        let procs = o.processes.unwrap_or(1);
        match DistSolver::new(&ds, params).with_processes(procs).train() {
            Ok(run) => (run.model, run.iterations, run.converged),
            Err(e) => {
                eprintln!("svm-train: training failed: {e}");
                exit(1);
            }
        }
    } else {
        let pool = o.threads.map(ThreadPool::new);
        let solver = SmoSolver::new(&ds, params);
        let solver = match &pool {
            Some(p) => solver.with_pool(p),
            None => solver,
        };
        match solver.train() {
            Ok(out) => (out.model, out.iterations, out.converged),
            Err(e) => {
                eprintln!("svm-train: training failed: {e}");
                exit(1);
            }
        }
    };

    if !o.quiet {
        eprintln!(
            "optimization finished: {iterations} iterations, {} SVs, bias {:+.6}{} ({:.2}s)",
            model.n_sv(),
            model.bias(),
            if converged {
                ""
            } else {
                " [iteration cap hit]"
            },
            start.elapsed().as_secs_f64()
        );
    }
    if let Err(e) = model.save(&o.model_file) {
        eprintln!("svm-train: cannot write model {}: {e}", o.model_file);
        exit(1);
    }
    if !o.quiet {
        eprintln!("model written to {}", o.model_file);
    }
}
